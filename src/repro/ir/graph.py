"""Sequential network graph with shape inference.

HybridDNN's accelerator is a folded, instruction-driven design that
executes one layer at a time, so the natural IR is an ordered chain of
layers.  The graph validates name uniqueness and shape compatibility at
construction time and pre-computes per-layer input/output shapes, MACs and
parameter counts — everything the compiler, estimator and DSE need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import GraphError
from repro.ir.layers import Conv2D, Dense, Layer
from repro.ir.tensor import TensorShape


@dataclass(frozen=True)
class LayerInfo:
    """Shape/cost information of one layer inside a network."""

    index: int
    layer: Layer
    input_shape: TensorShape
    output_shape: TensorShape
    macs: int
    ops: int
    weights: int
    biases: int


class Network:
    """An ordered chain of layers with a fixed input shape.

    Parameters
    ----------
    name:
        Model name (used in reports and emitted files).
    input_shape:
        Shape of the single input tensor.
    layers:
        Layers in execution order.  Layer names must be unique and shapes
        must chain correctly; violations raise :class:`GraphError`.
    """

    def __init__(self, name: str, input_shape: TensorShape, layers: List[Layer]):
        self.name = name
        self.input_shape = input_shape
        self._layers = list(layers)
        self._infos = self._build_infos()

    def _build_infos(self) -> List[LayerInfo]:
        seen = set()
        infos = []
        shape = self.input_shape
        for index, layer in enumerate(self._layers):
            if layer.name in seen:
                raise GraphError(f"duplicate layer name: {layer.name!r}")
            seen.add(layer.name)
            try:
                out_shape = layer.output_shape(shape)
            except Exception as exc:
                raise GraphError(
                    f"shape inference failed at layer {index} "
                    f"({layer.name!r}): {exc}"
                ) from exc
            infos.append(
                LayerInfo(
                    index=index,
                    layer=layer,
                    input_shape=shape,
                    output_shape=out_shape,
                    macs=layer.macs(shape),
                    ops=layer.ops(shape),
                    weights=layer.weight_count(shape),
                    biases=layer.bias_count(shape),
                )
            )
            shape = out_shape
        return infos

    # -- container protocol --------------------------------------------

    def __len__(self) -> int:
        return len(self._layers)

    def __iter__(self) -> Iterator[LayerInfo]:
        return iter(self._infos)

    def __getitem__(self, index: int) -> LayerInfo:
        return self._infos[index]

    # -- queries ---------------------------------------------------------

    @property
    def layers(self) -> List[Layer]:
        return list(self._layers)

    @property
    def output_shape(self) -> TensorShape:
        if not self._infos:
            return self.input_shape
        return self._infos[-1].output_shape

    def find(self, name: str) -> LayerInfo:
        """Look up a layer by name."""
        for info in self._infos:
            if info.layer.name == name:
                return info
        raise GraphError(f"no layer named {name!r} in network {self.name!r}")

    def compute_layers(self) -> List[LayerInfo]:
        """CONV / FC layers — the work the PE executes."""
        return [info for info in self._infos if info.layer.is_compute]

    def conv_layers(self) -> List[LayerInfo]:
        return [info for info in self._infos if isinstance(info.layer, Conv2D)]

    def dense_layers(self) -> List[LayerInfo]:
        return [info for info in self._infos if isinstance(info.layer, Dense)]

    @property
    def total_macs(self) -> int:
        return sum(info.macs for info in self._infos)

    @property
    def total_ops(self) -> int:
        return sum(info.ops for info in self._infos)

    @property
    def total_weights(self) -> int:
        return sum(info.weights for info in self._infos)

    def fused_relu_after(self, index: int) -> bool:
        """True if the layer after ``index`` is a fusable stand-alone ReLU."""
        from repro.ir.layers import ReLU

        nxt = index + 1
        return nxt < len(self._layers) and isinstance(self._layers[nxt], ReLU)

    def summary(self) -> str:
        """Human-readable per-layer table."""
        lines = [
            f"Network {self.name!r}  input={self.input_shape}  "
            f"{self.total_macs / 1e9:.2f} GMACs"
        ]
        header = f"{'#':>3} {'name':<16} {'type':<10} {'output':<14} {'MACs':>14}"
        lines.append(header)
        for info in self._infos:
            lines.append(
                f"{info.index:>3} {info.layer.name:<16} "
                f"{type(info.layer).__name__:<10} "
                f"{str(info.output_shape):<14} {info.macs:>14,}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Network(name={self.name!r}, layers={len(self._layers)}, "
            f"input={self.input_shape})"
        )


def validate_network(network: Network) -> Optional[str]:
    """Re-run structural validation; return None or an error message.

    ``Network.__init__`` already validates, so this is mainly useful for
    networks deserialised from external JSON whose layer objects may have
    been mutated afterwards.
    """
    try:
        Network(network.name, network.input_shape, network.layers)
    except GraphError as exc:
        return str(exc)
    return None

"""Tensor shape and fixed-point data type descriptors.

Feature maps in HybridDNN are 3-dimensional ``(channels, height, width)``
volumes; batch is handled outside the accelerator (each accelerator
instance processes one image at a time, Section 6 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ShapeError


@dataclass(frozen=True)
class TensorShape:
    """Shape of a feature-map tensor: ``(channels, height, width)``.

    A flattened (post-``Flatten``) tensor is represented with
    ``height == width == 1`` and all elements in ``channels``, which is
    exactly how the accelerator's FC path consumes it.
    """

    channels: int
    height: int
    width: int

    def __post_init__(self) -> None:
        for name in ("channels", "height", "width"):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ShapeError(
                    f"TensorShape.{name} must be a positive int, got {value!r}"
                )

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.channels * self.height * self.width

    @property
    def is_flat(self) -> bool:
        """True if this is a flattened (vector) tensor."""
        return self.height == 1 and self.width == 1

    def as_tuple(self) -> tuple:
        return (self.channels, self.height, self.width)

    def __str__(self) -> str:
        return f"{self.channels}x{self.height}x{self.width}"


@dataclass(frozen=True)
class DataType:
    """Fixed-point data type used by the accelerator datapath.

    Parameters
    ----------
    width:
        Total bit width (``DATA_WIDTH`` in the paper's resource model).
    frac:
        Number of fractional bits. ``frac < width`` is required; the
        remaining bits hold sign + integer part.
    signed:
        Whether the type is two's-complement signed. DNN activations after
        ReLU may use unsigned types, weights are always signed.
    """

    width: int
    frac: int = 0
    signed: bool = True

    def __post_init__(self) -> None:
        if self.width <= 0 or self.width > 64:
            raise ShapeError(f"DataType width out of range: {self.width}")
        if self.frac < 0 or self.frac >= self.width + (0 if self.signed else 1):
            raise ShapeError(
                f"DataType frac bits out of range: frac={self.frac} "
                f"width={self.width}"
            )

    @property
    def scale(self) -> float:
        """Value of one least-significant bit."""
        return 2.0 ** (-self.frac)

    @property
    def min_value(self) -> float:
        if self.signed:
            return -(2.0 ** (self.width - 1)) * self.scale
        return 0.0

    @property
    def max_value(self) -> float:
        if self.signed:
            return (2.0 ** (self.width - 1) - 1) * self.scale
        return (2.0 ** self.width - 1) * self.scale

    def quantize(self, array):
        """Round-to-nearest, saturating quantisation of ``array``.

        Returns a float array holding exactly representable values — the
        usual software model of fixed-point hardware.
        """
        import numpy as np

        scaled = np.round(np.asarray(array, dtype=np.float64) / self.scale)
        lo = self.min_value / self.scale
        hi = self.max_value / self.scale
        return np.clip(scaled, lo, hi) * self.scale

    def __str__(self) -> str:
        sign = "s" if self.signed else "u"
        return f"{sign}{self.width}.{self.frac}"


#: Paper's accelerator datapath types (Table 4 footnote): 8-bit weights,
#: 12-bit feature maps (widened by the Winograd input transform).
FEATURE_T = DataType(width=12, frac=6)
WEIGHT_T = DataType(width=8, frac=6)
ACCUM_T = DataType(width=32, frac=12)

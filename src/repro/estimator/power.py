"""Board power model for the energy-efficiency rows of Table 4.

Power is modelled as a device-static base plus per-resource dynamic
coefficients::

    P = P_static(device) + c_dsp * N_DSP + c_bram * N_BRAM + c_lut * N_LUT

The dynamic coefficients are global (they describe the silicon
process); the static terms absorb each board's infrastructure (DDR,
PCIe, PS).  Calibrated so the paper's measured board powers fall out of
the paper's Table-3 utilisations:

* VU9P @ 45.9 W with 5163 DSP / 3169 BRAM / 706k LUT,
* PYNQ-Z1 @ 2.6 W with 220 DSP / 277 BRAM / 37k LUT.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceError
from repro.fpga.device import FpgaDevice
from repro.fpga.resources import ResourceBudget

#: Dynamic power per occupied resource (watts).
C_DSP = 4.0e-3
C_BRAM = 3.0e-3
C_LUT = 20.0e-6

#: Board infrastructure power (watts).
STATIC_POWER = {
    "vu9p": 1.7,  # PCIe card: DDR4 + PCIe + shell
    "pynq-z1": 0.15,  # SoC board: PS + DDR3
    "zcu102": 4.0,
    "ku115": 3.0,
}
DEFAULT_STATIC_W = 2.0


@dataclass(frozen=True)
class PowerEstimate:
    """Breakdown of the modelled board power."""

    static_w: float
    dsp_w: float
    bram_w: float
    lut_w: float

    @property
    def total_w(self) -> float:
        return self.static_w + self.dsp_w + self.bram_w + self.lut_w


def estimate_power(
    resources: ResourceBudget, device: FpgaDevice
) -> PowerEstimate:
    """Board power of a design occupying ``resources`` on ``device``."""
    if not resources.fits_in(device.resources):
        raise DeviceError(
            f"resources {resources} exceed {device.name} capacity"
        )
    return PowerEstimate(
        static_w=STATIC_POWER.get(device.name, DEFAULT_STATIC_W),
        dsp_w=C_DSP * resources.dsps,
        bram_w=C_BRAM * resources.brams,
        lut_w=C_LUT * resources.luts,
    )

"""Resource utilisation models (Eq. 3-5).

All three models take one accelerator instance; multiply by
``cfg.instances`` (the DSE does) for the whole-FPGA utilisation.

DSP (Eq. 3)::

    N_DSP = PI*PO*PT^2 / packing + alpha*PO*m^2 + PO + beta

BRAM (Eq. 4) — bank counts from the Table-1 partition factors scaled by
the data/BRAM width ratio; the weight buffer's banks are deeper than one
18Kb BRAM on some devices (``wgt_bram_depth``)::

    N_BRAM = (DATA_WIDTH / BRAM_WIDTH)
             * (PI*PT^2 + PI*PO*PT^2 * depth + (1 + a_b)*PO*m^2)

LUT (Eq. 5)::

    N_LUT = gamma * PI*PO*PT^2 * (1 + delta*m^2)

The ``delta*m^2`` term is the Winograd transform network — dropping it
yields the spatial-only baseline used for the Section-6.1 overhead
claim (26.4 % extra LUTs, zero extra DSPs).
"""

from __future__ import annotations

import math

from repro.arch.buffers import hybrid_bank_counts
from repro.arch.params import AcceleratorConfig
from repro.estimator.calibration import CalibrationProfile, get_calibration
from repro.fpga.device import FpgaDevice
from repro.fpga.resources import ResourceBudget


def dsp_count(cfg: AcceleratorConfig, cal: CalibrationProfile) -> int:
    """Eq. 3 — DSPs of one instance."""
    pe = cfg.pi * cfg.po * cfg.pt * cfg.pt / cal.dsp_packing
    accum = cal.alpha * cfg.po * cfg.m * cfg.m
    return int(round(pe + accum + cfg.po + cal.beta))


def bram_count(cfg: AcceleratorConfig, cal: CalibrationProfile,
               bram_width_bits: int = 18) -> int:
    """Eq. 4 — 18Kb BRAMs of one instance."""
    banks = hybrid_bank_counts(cfg)
    width_ratio = cfg.data_width / bram_width_bits
    total = width_ratio * (
        banks["input"]
        + banks["weight"] * cal.wgt_bram_depth
        + (1.0 + cal.bram_alpha) * banks["output"]
    )
    return int(round(total))


def lut_count(cfg: AcceleratorConfig, cal: CalibrationProfile,
              hybrid: bool = True) -> int:
    """Eq. 5 — LUTs of one instance.

    ``hybrid=False`` drops the ``delta*m^2`` Winograd-transform term,
    giving the conventional spatial-only architecture.
    """
    macs = cfg.pi * cfg.po * cfg.pt * cfg.pt
    factor = 1.0 + (cal.delta * cfg.m * cfg.m if hybrid else 0.0)
    return int(round(cal.gamma * macs * factor))


def estimate_resources(
    cfg: AcceleratorConfig,
    device: FpgaDevice,
    cal: CalibrationProfile = None,
    per_instance: bool = False,
) -> ResourceBudget:
    """Whole-design (or single-instance) utilisation on ``device``."""
    if cal is None:
        cal = get_calibration(device.name)
    one = ResourceBudget(
        luts=lut_count(cfg, cal),
        dsps=dsp_count(cfg, cal),
        brams=bram_count(cfg, cal, device.bram_width_bits),
    )
    if per_instance:
        return one
    return one * cfg.instances


def spatial_only_resources(
    cfg: AcceleratorConfig,
    device: FpgaDevice,
    cal: CalibrationProfile = None,
) -> ResourceBudget:
    """Baseline without hybrid (Winograd) support, for the overhead
    ablation: same PE array, no transform network, no reconfigurable
    layout machinery."""
    if cal is None:
        cal = get_calibration(device.name)
    one = ResourceBudget(
        luts=lut_count(cfg, cal, hybrid=False),
        dsps=dsp_count(cfg, cal),
        brams=bram_count(cfg, cal, device.bram_width_bits),
    )
    return one * cfg.instances


def hybrid_lut_overhead(cfg: AcceleratorConfig, device: FpgaDevice,
                        cal: CalibrationProfile = None) -> float:
    """Fractional LUT overhead of hybrid vs spatial-only (paper: 0.264
    on VU9P)."""
    if cal is None:
        cal = get_calibration(device.name)
    hybrid = lut_count(cfg, cal, hybrid=True)
    spatial = lut_count(cfg, cal, hybrid=False)
    return hybrid / spatial - 1.0


def instances_per_die(cfg: AcceleratorConfig, device: FpgaDevice,
                      cal: CalibrationProfile = None) -> int:
    """How many instances fit one die (cross-die instances are not
    allowed — Section 1's timing-violation discussion)."""
    if cal is None:
        cal = get_calibration(device.name)
    one = estimate_resources(cfg, device, cal, per_instance=True)
    die = device.resources_per_die()
    counts = []
    for resource in ("luts", "dsps", "brams"):
        used = getattr(one, resource)
        avail = getattr(die, resource)
        counts.append(avail // used if used else math.inf)
    return int(min(counts))

"""Analytical performance / resource estimation (Section 5).

``resources``
    Eq. 3-5: DSP, BRAM and LUT utilisation of one configuration.
``latency``
    Eq. 6-15: per-layer latency under each (mode, dataflow) combination
    and whole-network estimates.
``calibration``
    The profiled constants (alpha, beta, gamma, delta, ...) fitted per
    device so the models reproduce the paper's Table 3.
"""

from repro.estimator.calibration import CalibrationProfile, get_calibration
from repro.estimator.resources import (
    estimate_resources,
    hybrid_lut_overhead,
    spatial_only_resources,
)
from repro.estimator.latency import (
    LayerEstimate,
    NetworkEstimate,
    estimate_layer,
    estimate_network,
)
from repro.estimator.power import PowerEstimate, estimate_power
from repro.estimator.vectorized import BatchLayerEstimator

__all__ = [
    "BatchLayerEstimator",
    "CalibrationProfile",
    "LayerEstimate",
    "NetworkEstimate",
    "PowerEstimate",
    "estimate_layer",
    "estimate_network",
    "estimate_power",
    "estimate_resources",
    "get_calibration",
    "hybrid_lut_overhead",
    "spatial_only_resources",
]

"""Profiled calibration constants of the resource models.

Section 5.1: "alpha, beta, gamma, and delta can be pre-defined through
profiling".  Having no synthesis tool in the loop, we fit the constants
to the paper's own Table 3 utilisation numbers; the fitting derivation
is recorded in EXPERIMENTS.md.  Constants:

``alpha``
    DSPs of the output-transform/accumulation path per output lane and
    output-tile element (Eq. 3's quantisation-strategy correction).
``beta``
    DSPs used for address generation — FPGA-independent (Eq. 3).
``gamma``
    LUTs per MAC unit (Eq. 5).
``delta``
    Relative LUT cost of the Winograd transform network per output-tile
    element (Eq. 5); ``delta * m^2`` is the hybrid-over-spatial LUT
    overhead, 26.4 % for the VU9P design (Section 6.1).
``dsp_packing``
    Multipliers sharing one DSP slice (2 when 8-bit weights allow two
    MACs per DSP48 — how the PYNQ-Z1 design fits 256 logical MACs into
    220 DSPs).
``wgt_bram_depth``
    Average 18Kb BRAMs per weight-buffer bank (embedded designs keep
    relatively deeper weight buffers, > 1 BRAM per bank).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceError


@dataclass(frozen=True)
class CalibrationProfile:
    """Fitted constants of Eq. 3-5 for one device family."""

    name: str
    alpha: float = 4.0
    beta: float = 24.0
    gamma: float = 161.7
    delta: float = 0.0165
    dsp_packing: int = 1
    wgt_bram_depth: float = 1.0
    bram_alpha: float = 0.0

    def __post_init__(self) -> None:
        if self.dsp_packing < 1:
            raise DeviceError("dsp_packing must be >= 1")
        for field_name in ("alpha", "beta", "gamma", "delta", "wgt_bram_depth"):
            if getattr(self, field_name) < 0:
                raise DeviceError(f"{field_name} must be >= 0")


#: VU9P profile — fitted to Table 3's 706353 LUT / 5163 DSP / 3169 BRAM
#: across 6 instances (see EXPERIMENTS.md for the arithmetic).
VU9P_PROFILE = CalibrationProfile(
    name="vu9p",
    alpha=4.0,
    beta=24.0,
    gamma=161.7,
    delta=0.0165,
    dsp_packing=1,
    wgt_bram_depth=1.014,
)

#: PYNQ-Z1 profile — fitted to Table 3's 37034 LUT / 220 DSP / 277 BRAM.
#: 8-bit weights pack two multiplications per DSP48E1 (dsp_packing = 2).
PYNQ_PROFILE = CalibrationProfile(
    name="pynq-z1",
    alpha=4.0,
    beta=24.0,
    gamma=135.7,
    delta=0.0165,
    dsp_packing=2,
    wgt_bram_depth=1.31,
)

#: Default profile for devices we never profiled: VU9P-like logic cost,
#: no DSP packing.
GENERIC_PROFILE = CalibrationProfile(name="generic")

_PROFILES = {
    "vu9p": VU9P_PROFILE,
    "pynq-z1": PYNQ_PROFILE,
}


def get_calibration(device_name: str) -> CalibrationProfile:
    """Profile for ``device_name`` (generic fallback for unknown parts)."""
    return _PROFILES.get(device_name.lower(), GENERIC_PROFILE)

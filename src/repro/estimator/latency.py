"""Latency models (Eq. 6-15).

Per-layer timing of the four functional modules, the four
(mode x dataflow) combinations, and the ``T_penalty`` term for memory
latency that cannot be hidden.

Notation, matching the paper: a layer has ``C`` input channels of
``H x W`` input, ``K`` output channels of ``H_out x W_out`` output, an
``R x S`` kernel, and runs on a PE with parallel factors ``PI, PO, PT``
at ``FREQ``.  ``GK`` weight groups follow from the weight-buffer sizing
(Section 4.2.4, computed in :mod:`repro.mapping.partition`).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List

from repro.arch.params import AcceleratorConfig
from repro.arch.pe import PIPELINE_DEPTH
from repro.errors import UnsupportedLayerError
from repro.estimator.calibration import CalibrationProfile, get_calibration
from repro.fpga.device import FpgaDevice
from repro.ir.graph import LayerInfo, Network
from repro.mapping.partition import fused_pool_for, partition_layer
from repro.mapping.strategy import NetworkMapping

#: Per-instruction overhead folded into T_penalty: DDR setup plus COMP
#: pipeline fill (see repro.arch.dram / repro.arch.pe).
GROUP_OVERHEAD_CYCLES = 64 + PIPELINE_DEPTH


@dataclass(frozen=True)
class LayerEstimate:
    """Analytical latency breakdown of one layer (seconds)."""

    layer_name: str
    mode: str
    dataflow: str
    t_comp: float
    t_ldi: float
    t_ldw: float
    t_sv: float
    t_penalty: float
    latency: float
    bound: str  # "compute" | "input" | "weight" | "save"
    ops: int

    @property
    def gops(self) -> float:
        """Effective single-instance throughput while running this layer."""
        return self.ops / self.latency / 1e9 if self.latency > 0 else 0.0


@dataclass(frozen=True)
class NetworkEstimate:
    """Whole-network analytical estimate.

    ``latency`` and ``ops`` are O(layers) sums that sit inside DSE sort
    keys and objectives, so they are computed once per instance
    (``cached_property`` writes straight into ``__dict__``, which the
    frozen dataclass permits).
    """

    network_name: str
    layers: List[LayerEstimate]
    instances: int

    @cached_property
    def latency(self) -> float:
        """End-to-end latency of one image (seconds, Table-2 objective)."""
        return sum(layer.latency for layer in self.layers)

    @cached_property
    def ops(self) -> int:
        return sum(layer.ops for layer in self.layers)

    @property
    def gops_per_instance(self) -> float:
        return self.ops / self.latency / 1e9 if self.latency else 0.0

    @property
    def gops(self) -> float:
        """Aggregate throughput: instances run batch-parallel images."""
        return self.gops_per_instance * self.instances

    def bound_histogram(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for layer in self.layers:
            counts[layer.bound] = counts.get(layer.bound, 0) + 1
        return counts


def _module_times(cfg, device, info, mode):
    """T_CP, T_LDI, T_LDW, T_SV of Eq. 6-11 (whole layer, seconds)."""
    from repro.ir.layers import Dense

    layer = info.layer
    if isinstance(layer, Dense):
        c, h, w = info.input_shape.size, 1, 1
        r = s = 1
        k = layer.out_features
    else:
        c = info.input_shape.channels
        h, w = info.input_shape.height, info.input_shape.width
        r, s = layer.kernel_size
        k = layer.out_channels
    out_h, out_w = info.output_shape.height, info.output_shape.width

    freq = cfg.frequency_hz
    bw_f = device.bandwidth_elems(cfg.data_width, cfg.instances)
    bw_w = device.bandwidth_elems(cfg.weight_width, cfg.instances)
    pi, po, pt, m = cfg.pi, cfg.po, cfg.pt, cfg.m

    if mode == "wino":
        blocks = (-(-r // 3)) * (-(-s // 3))
        t_comp = (k * c * blocks * pt * pt * out_h * out_w) / (
            freq * pi * po * pt * pt * m * m
        )  # Eq. 7
        wgt_elems = k * c * blocks * pt * pt
    else:
        t_comp = (k * c * r * s * out_h * out_w) / (
            freq * pi * po * pt * pt
        )  # Eq. 6
        wgt_elems = k * c * r * s
    t_ldw = wgt_elems / min(bw_w, freq * pi * po * pt)  # Eq. 8 / 9
    t_ldi = (c * h * w) / min(bw_f, freq * pi * pt)  # Eq. 10
    t_sv = (k * out_h * out_w) / min(bw_f, freq * po * pt)  # Eq. 11
    return t_comp, t_ldi, t_ldw, t_sv


def estimate_layer(
    cfg: AcceleratorConfig,
    device: FpgaDevice,
    info: LayerInfo,
    mode: str,
    dataflow: str,
    cal: CalibrationProfile = None,
    fused_pool: int = 1,
    partition=None,
) -> LayerEstimate:
    """Eq. 12-15: one layer's latency under (mode, dataflow).

    ``T_penalty`` models the un-hidable prologue (first strip + first
    weight group loads), epilogue (last save) and per-group DDR/pipeline
    overheads — the effects the max() of Eq. 12-15 abstracts away.

    ``cal`` is **accepted and ignored**: the latency equations are
    calibration-free (calibration feeds the resource model, Eq. 3-5).
    The parameter survives for signature symmetry with the cached path
    — :meth:`repro.pipeline.cache.EvaluationCache.estimate` keeps
    ``cal`` in its memo key so a future calibrated latency term can
    never read stale persisted entries — and every call site threads
    the session's profile through uniformly.  The batch API
    (:class:`repro.estimator.vectorized.BatchLayerEstimator`) does not
    inherit the dead argument: its estimation methods take no ``cal``.

    ``partition`` may carry a precomputed
    :class:`~repro.mapping.partition.LayerPartition` for this
    (layer, cfg, mode, fused_pool) — the group geometry is independent of
    the dataflow, data widths, clock and instance count, so the
    evaluation cache shares it across those dimensions.
    """
    if partition is None:
        partition = partition_layer(cfg, info, mode, fused_pool)
    if dataflow == "is" and partition.n_c_groups > 1:
        # IS keeps a whole strip resident across all weight groups, which
        # is impossible once the channel depth is chunked (GC > 1); the
        # compiler enforces the same rule.
        raise UnsupportedLayerError(
            f"{info.layer.name}: IS dataflow requires GC == 1 "
            f"(got {partition.n_c_groups})"
        )
    t_comp, t_ldi, t_ldw, t_sv = _module_times(cfg, device, info, mode)
    gk = partition.n_k_groups * partition.n_c_groups
    n_rows = partition.n_row_groups

    if dataflow == "is":
        # Eq. 12 / 14: weights stream once per row group.
        body = max(t_ldi, n_rows * t_ldw, t_comp, t_sv)
    elif dataflow == "ws":
        # Eq. 13 / 15: inputs stream once per weight group.
        body = max(gk * t_ldi, t_ldw, t_comp, t_sv)
    else:
        raise UnsupportedLayerError(f"unknown dataflow {dataflow!r}")

    groups = partition.total_groups
    t_penalty = (
        t_ldi / max(n_rows, 1)
        + t_ldw / max(gk, 1)
        + t_sv / max(n_rows, 1)
        + groups * GROUP_OVERHEAD_CYCLES / cfg.frequency_hz
    )
    terms = {
        "input": t_ldi if dataflow == "is" else gk * t_ldi,
        "weight": n_rows * t_ldw if dataflow == "is" else t_ldw,
        "compute": t_comp,
        "save": t_sv,
    }
    bound = max(terms, key=terms.get)
    return LayerEstimate(
        layer_name=info.layer.name,
        mode=mode,
        dataflow=dataflow,
        t_comp=t_comp,
        t_ldi=t_ldi,
        t_ldw=t_ldw,
        t_sv=t_sv,
        t_penalty=t_penalty,
        latency=body + t_penalty,
        bound=bound,
        ops=info.ops,
    )


def estimate_network(
    cfg: AcceleratorConfig,
    device: FpgaDevice,
    network: Network,
    mapping: NetworkMapping,
    cal: CalibrationProfile = None,
    cache=None,
) -> NetworkEstimate:
    """Sum of per-layer estimates — the Table-2 objective.

    ``cache`` is an optional :class:`repro.pipeline.cache.EvaluationCache`
    (accepted duck-typed to keep the estimator import-free of the
    pipeline layer); the DSE threads one through so re-estimating the
    selected mapping costs dictionary lookups, not model evaluations.
    """
    if cal is None:
        cal = get_calibration(device.name)
    estimate_fn = cache.estimate if cache is not None else estimate_layer
    mapping.validate_against(network)
    layers = []
    for info in network.compute_layers():
        m = mapping.for_layer(info.layer.name)
        pool = fused_pool_for(network, info.index)
        layers.append(
            estimate_fn(cfg, device, info, m.mode, m.dataflow, cal, pool)
        )
    return NetworkEstimate(
        network_name=network.name, layers=layers, instances=cfg.instances
    )

"""Vectorised candidate-batch latency estimation (the DSE fast path).

:func:`repro.estimator.latency.estimate_layer` evaluates Eq. 6-15 for
one (candidate, layer, mode, dataflow) at a time; a full sweep calls it
tens of thousands of times, and the time goes to Python arithmetic and
cache-key construction, not to the math.  :class:`BatchLayerEstimator`
evaluates one layer's terms for a whole *batch* of candidates as numpy
float64 array operations instead — ``(PI, PO, PT, m, freq, widths,
instances)`` stacked into columns, ``T_CP/T_LDI/T_LDW/T_SV``, the
IS/WS body maxes and ``T_penalty`` computed columnwise — and
materialises :class:`~repro.estimator.latency.LayerEstimate` rows only
where a scalar result is actually needed.

**Exactness.**  The vector path is byte-identical to the scalar
oracle, not approximately equal.  Every scalar expression is
replicated element-wise with the same operation order and
associativity, and IEEE 754 float64 operations are deterministic and
correctly rounded, so each intermediate is bit-equal.  The one place
the two paths differ structurally — the scalar path forms integer
numerators such as ``k * c * r * s * out_h * out_w`` in exact
Python-int arithmetic and converts to float once, while the vector
path multiplies float64 values stepwise — stays exact as long as every
intermediate integer product is below ``2**53`` (float64 represents
every such integer exactly, and a product of exactly-represented
integers below the limit is itself exact).  The constructor checks
this per layer and refuses networks beyond it; nothing in the zoo
comes within orders of magnitude.  Selection order is replicated too:
latencies are stacked in the (mode, dataflow) iteration order of
:func:`~repro.dse.engine.map_network` and ``argmin``/``argmax`` pick
the *first* extremum, exactly matching the scalar strict-``<`` update
and the first-maximum ``bound`` key.

**Group geometry.**  The partition group counts are the only
per-candidate scalars that cannot vectorise, but they depend only on
the *partition projection* ``(PI, PO, PT, buffer sizes)`` — a
621-candidate VU9P sweep collapses onto a few dozen — so one
:class:`~repro.mapping.partition.LayerPartition` per unique projection
per (layer, mode) supplies ``GK``/row/total counts for the whole
column, routed through the
:class:`~repro.pipeline.cache.EvaluationCache` when one is threaded so
partitions keep flowing into the on-disk store.  Selected estimates
are offered back into the cache the same way
(:meth:`~repro.pipeline.cache.EvaluationCache.offer_estimate`), which
keeps the cache/store protocol working without paying the per-call
key-building cost for the combinations that lost.

Calibration is *not* a parameter of the batch API: ``estimate_layer``
accepts-and-ignores ``cal`` (latency is calibration-free), so the
batch methods simply do not take one.  The constructor keeps the
session's profile solely to build cache/store keys equal to the
scalar path's.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.params import SUPPORTED_PT, AcceleratorConfig
from repro.errors import DseError, ReproError
from repro.estimator.calibration import CalibrationProfile
from repro.estimator.latency import (
    GROUP_OVERHEAD_CYCLES,
    LayerEstimate,
    NetworkEstimate,
)
from repro.fpga.device import FpgaDevice
from repro.ir.graph import LayerInfo, Network
from repro.ir.layers import Dense
from repro.mapping.partition import (
    LayerPartition,
    fused_pool_for,
    partition_layer,
)
from repro.mapping.strategy import (
    DATAFLOWS,
    MODES,
    LayerMapping,
    NetworkMapping,
    winograd_supported,
)

#: (mode, dataflow) combinations in ``map_network``'s iteration order —
#: ``argmin`` over this axis replicates its first-strict-minimum pick.
COMBOS: Tuple[Tuple[str, str], ...] = tuple(
    (mode, dataflow) for mode in MODES for dataflow in DATAFLOWS
)

#: Bound labels in the dict order of ``estimate_layer``'s ``terms`` —
#: ``argmax`` over this axis replicates its first-maximum ``bound``.
BOUND_LABELS = ("input", "weight", "compute", "save")

#: Largest integer float64 represents exactly; the stepwise numerator
#: products must stay below it for the byte-identity argument to hold.
_EXACT_LIMIT = 2**53


class _LayerGeometry:
    """Per-layer constants of Eq. 6-11, precomputed once per network."""

    __slots__ = (
        "info", "index", "pool", "name", "ops", "wino_ok", "blocks",
        "kc", "chw", "sv_elems", "num_spat", "wgt_spat", "out_hw",
    )

    def __init__(self, network: Network, info: LayerInfo):
        layer = info.layer
        if isinstance(layer, Dense):
            c, h, w = info.input_shape.size, 1, 1
            r = s = 1
            k = layer.out_features
        else:
            c = info.input_shape.channels
            h, w = info.input_shape.height, info.input_shape.width
            r, s = layer.kernel_size
            k = layer.out_channels
        out_h, out_w = info.output_shape.height, info.output_shape.width
        self.info = info
        self.index = info.index
        self.pool = fused_pool_for(network, info.index)
        self.name = layer.name
        self.ops = info.ops
        self.wino_ok = winograd_supported(info)
        self.blocks = (-(-r // 3)) * (-(-s // 3))
        self.kc = k * c
        self.out_hw = out_h * out_w
        self.chw = c * h * w  # Eq. 10 numerator
        self.sv_elems = k * out_h * out_w  # Eq. 11 numerator
        self.num_spat = k * c * r * s * out_h * out_w  # Eq. 6 numerator
        self.wgt_spat = k * c * r * s  # Eq. 8 numerator
        pt_max = max(SUPPORTED_PT)
        worst = max(
            self.num_spat,
            self.kc * self.blocks * pt_max * pt_max * self.out_hw,
        )
        if worst >= _EXACT_LIMIT:
            raise DseError(
                f"layer {self.name!r} is too large for the vectorized "
                f"estimator's exact float64 products ({worst} >= 2**53); "
                "use estimator='scalar'"
            )


class BatchLayerEstimator:
    """Eq. 6-15 for *all* candidates of a batch as numpy column ops.

    One instance serves one ``(device, network)`` pair for the lifetime
    of a DSE run: layer geometry is precomputed at construction and
    partition lookups are memoized across batches.  ``cache`` is an
    optional :class:`~repro.pipeline.cache.EvaluationCache`
    (duck-typed, like :func:`~repro.estimator.latency.estimate_network`
    takes it): partitions are routed through it and the selected
    estimates are offered back, so a store-backed session persists the
    vectorized run's results exactly like a scalar run's.
    """

    def __init__(
        self,
        device: FpgaDevice,
        network: Network,
        cal: Optional[CalibrationProfile] = None,
        cache=None,
    ):
        self.device = device
        self.network = network
        #: Cache-key parity with the scalar path only — the latency
        #: math never reads it (see the module docstring).
        self._cal = cal
        self.cache = cache
        self.layers = [
            _LayerGeometry(network, info)
            for info in network.compute_layers()
        ]
        #: (layer index, mode, projection) -> LayerPartition | None
        #: (None memoizes an infeasible projection).
        self._partitions: Dict[Tuple, Optional[LayerPartition]] = {}
        #: layer index -> cache signature (computed lazily: only a
        #: cache-backed run offers estimates, and the signature is
        #: per-layer, amortised over hundreds of per-candidate offers).
        self._signatures: Dict[int, Tuple] = {}

    def _signature_for(self, geom: _LayerGeometry) -> Tuple:
        try:
            return self._signatures[geom.index]
        except KeyError:
            # Local import: the estimator layer stays import-free of the
            # pipeline layer (the cache is accepted duck-typed).
            from repro.pipeline.cache import layer_signature

            sig = layer_signature(geom.info, geom.pool)
            self._signatures[geom.index] = sig
            return sig

    # -- group-geometry gathering -----------------------------------------

    @staticmethod
    def _projection(cfg: AcceleratorConfig) -> Tuple:
        """The fields a partition depends on (see EvaluationCache)."""
        return (
            cfg.pi, cfg.po, cfg.pt,
            cfg.input_buffer_vecs, cfg.weight_buffer_vecs,
            cfg.output_buffer_vecs,
        )

    def _partition_for(
        self, geom: _LayerGeometry, mode: str, proj: Tuple,
        cfg: AcceleratorConfig,
    ) -> Optional[LayerPartition]:
        key = (geom.index, mode, proj)
        try:
            return self._partitions[key]
        except KeyError:
            pass
        try:
            if self.cache is not None:
                partition = self.cache.partition(
                    cfg, geom.info, mode, geom.pool
                )
            else:
                partition = partition_layer(cfg, geom.info, mode, geom.pool)
        except ReproError:
            partition = None
        self._partitions[key] = partition
        return partition

    def _gather_groups(self, geom, mode, reps, proj_ids):
        """Group-count columns, one partition per unique projection."""
        count = len(reps)
        ok = np.zeros(count, dtype=bool)
        gk = np.ones(count)
        n_rows = np.ones(count)
        gc = np.ones(count)
        groups = np.ones(count)
        for u, (proj, cfg) in enumerate(reps):
            partition = self._partition_for(geom, mode, proj, cfg)
            if partition is None:
                continue
            ok[u] = True
            gk[u] = partition.n_k_groups * partition.n_c_groups
            n_rows[u] = partition.n_row_groups
            gc[u] = partition.n_c_groups
            groups[u] = partition.total_groups
        return (
            ok[proj_ids], gk[proj_ids], n_rows[proj_ids],
            gc[proj_ids], groups[proj_ids],
        )

    # -- Eq. 6-15 columns --------------------------------------------------

    def _columns(self, cfgs: Sequence[AcceleratorConfig]):
        device = self.device
        pi = np.array([cfg.pi for cfg in cfgs], dtype=np.float64)
        po = np.array([cfg.po for cfg in cfgs], dtype=np.float64)
        pt = np.array([cfg.pt for cfg in cfgs], dtype=np.float64)
        m = np.array([cfg.m for cfg in cfgs], dtype=np.float64)
        freq = np.array(
            [cfg.frequency_hz for cfg in cfgs], dtype=np.float64
        )
        bw_f = np.array(
            [
                device.bandwidth_elems(cfg.data_width, cfg.instances)
                for cfg in cfgs
            ],
            dtype=np.float64,
        )
        bw_w = np.array(
            [
                device.bandwidth_elems(cfg.weight_width, cfg.instances)
                for cfg in cfgs
            ],
            dtype=np.float64,
        )
        return pi, po, pt, m, freq, bw_f, bw_w

    def _mode_times(self, geom, mode, cols):
        """Columnwise ``_module_times``: T_CP, T_LDI, T_LDW, T_SV."""
        pi, po, pt, m, freq, bw_f, bw_w = cols
        if mode == "wino":
            kcb = float(geom.kc * geom.blocks)
            t_comp = (kcb * pt * pt * geom.out_hw) / (
                freq * pi * po * pt * pt * m * m
            )  # Eq. 7
            wgt_elems = kcb * pt * pt
        else:
            t_comp = geom.num_spat / (freq * pi * po * pt * pt)  # Eq. 6
            wgt_elems = float(geom.wgt_spat)
        t_ldw = wgt_elems / np.minimum(bw_w, freq * pi * po * pt)  # Eq. 8/9
        t_ldi = geom.chw / np.minimum(bw_f, freq * pi * pt)  # Eq. 10
        t_sv = geom.sv_elems / np.minimum(bw_f, freq * po * pt)  # Eq. 11
        return t_comp, t_ldi, t_ldw, t_sv

    def _evaluate(self, cfgs: Sequence[AcceleratorConfig]):
        """All terms for every (layer, combo, candidate).

        Returns, per layer, one row per :data:`COMBOS` entry: ``None``
        when the combination is infeasible for the whole batch, else
        ``(feasible, t_comp, t_ldi, t_ldw, t_sv, t_penalty, latency,
        bound_idx)`` column arrays.
        """
        cols = self._columns(cfgs)
        freq = cols[4]
        uniq: Dict[Tuple, int] = {}
        reps: List[Tuple[Tuple, AcceleratorConfig]] = []
        proj_ids = np.empty(len(cfgs), dtype=np.intp)
        for j, cfg in enumerate(cfgs):
            proj = self._projection(cfg)
            u = uniq.get(proj)
            if u is None:
                u = uniq[proj] = len(reps)
                reps.append((proj, cfg))
            proj_ids[j] = u
        overhead = float(GROUP_OVERHEAD_CYCLES)

        per_layer = []
        for geom in self.layers:
            combo_rows: List[Optional[Tuple]] = []
            for mode in MODES:
                if mode == "wino" and not geom.wino_ok:
                    combo_rows.extend((None, None))
                    continue
                ok, gk, n_rows, gc, groups = self._gather_groups(
                    geom, mode, reps, proj_ids
                )
                if not ok.any():
                    combo_rows.extend((None, None))
                    continue
                t_comp, t_ldi, t_ldw, t_sv = self._mode_times(
                    geom, mode, cols
                )
                t_penalty = (
                    t_ldi / np.maximum(n_rows, 1.0)
                    + t_ldw / np.maximum(gk, 1.0)
                    + t_sv / np.maximum(n_rows, 1.0)
                    + groups * overhead / freq
                )
                for dataflow in DATAFLOWS:
                    if dataflow == "is":
                        # Eq. 12 / 14 — and the GC == 1 rule the scalar
                        # path enforces with UnsupportedLayerError.
                        feasible = ok & (gc == 1.0)
                        input_term = t_ldi
                        weight_term = n_rows * t_ldw
                    else:
                        # Eq. 13 / 15.
                        feasible = ok
                        input_term = gk * t_ldi
                        weight_term = t_ldw
                    if not feasible.any():
                        combo_rows.append(None)
                        continue
                    body = np.maximum(
                        np.maximum(
                            np.maximum(input_term, weight_term), t_comp
                        ),
                        t_sv,
                    )
                    latency = body + t_penalty
                    bound_idx = np.argmax(
                        np.stack(
                            (input_term, weight_term, t_comp, t_sv)
                        ),
                        axis=0,
                    )
                    combo_rows.append((
                        feasible, t_comp, t_ldi, t_ldw, t_sv,
                        t_penalty, latency, bound_idx,
                    ))
            per_layer.append(combo_rows)
        return per_layer

    # -- materialisation ---------------------------------------------------

    @staticmethod
    def _materialize(geom, row, j, mode, dataflow) -> LayerEstimate:
        """One scalar :class:`LayerEstimate` out of the column arrays."""
        return LayerEstimate(
            layer_name=geom.name,
            mode=mode,
            dataflow=dataflow,
            t_comp=float(row[1][j]),
            t_ldi=float(row[2][j]),
            t_ldw=float(row[3][j]),
            t_sv=float(row[4][j]),
            t_penalty=float(row[5][j]),
            latency=float(row[6][j]),
            bound=BOUND_LABELS[int(row[7][j])],
            ops=geom.ops,
        )

    def estimate_grid(
        self, cfgs: Sequence[AcceleratorConfig]
    ) -> List[List[Dict[Tuple[str, str], Optional[LayerEstimate]]]]:
        """Every (layer, mode, dataflow) estimate per candidate.

        ``grid[j][li][(mode, dataflow)]`` is the materialised
        :class:`LayerEstimate` of candidate ``j`` on compute layer
        ``li`` — or ``None`` where the scalar path raises.  This is the
        exhaustive view the property tests compare term by term against
        :func:`~repro.estimator.latency.estimate_layer`.
        """
        cfgs = list(cfgs)
        per_layer = self._evaluate(cfgs)
        grid = []
        for j in range(len(cfgs)):
            by_layer = []
            for li, geom in enumerate(self.layers):
                cell: Dict[Tuple[str, str], Optional[LayerEstimate]] = {}
                for ci, (mode, dataflow) in enumerate(COMBOS):
                    row = per_layer[li][ci]
                    if row is None or not row[0][j]:
                        cell[(mode, dataflow)] = None
                    else:
                        cell[(mode, dataflow)] = self._materialize(
                            geom, row, j, mode, dataflow
                        )
                by_layer.append(cell)
            grid.append(by_layer)
        return grid

    def map_candidates(
        self, cfgs: Sequence[AcceleratorConfig]
    ) -> List[Optional[Tuple[NetworkMapping, NetworkEstimate]]]:
        """Step 2 for a whole candidate batch at once.

        Per candidate: the ``(mapping, estimate)`` pair
        :func:`~repro.dse.engine.map_network` would return, or ``None``
        where it would raise :class:`~repro.errors.DseError` (some
        layer fits no combination).  Results are byte-identical to the
        scalar path, runner-up ties included.
        """
        cfgs = list(cfgs)
        if not cfgs:
            return []
        per_layer = self._evaluate(cfgs)
        n = len(cfgs)
        n_layers = len(self.layers)
        alive = np.ones(n, dtype=bool)
        choices = np.zeros((n_layers, n), dtype=np.intp)
        for li in range(n_layers):
            lat = np.full((len(COMBOS), n), np.inf)
            for ci, row in enumerate(per_layer[li]):
                if row is None:
                    continue
                lat[ci] = np.where(row[0], row[6], np.inf)
            best = np.argmin(lat, axis=0)
            choices[li] = best
            alive &= np.isfinite(lat[best, np.arange(n)])

        results: List[Optional[Tuple[NetworkMapping, NetworkEstimate]]] = []
        for j, cfg in enumerate(cfgs):
            if not alive[j]:
                results.append(None)
                continue
            selections = []
            estimates = []
            for li, geom in enumerate(self.layers):
                ci = int(choices[li, j])
                mode, dataflow = COMBOS[ci]
                estimate = self._materialize(
                    geom, per_layer[li][ci], j, mode, dataflow
                )
                selections.append(LayerMapping(geom.name, mode, dataflow))
                estimates.append(estimate)
                if self.cache is not None:
                    self.cache.offer_estimate(
                        cfg, self.device, geom.info, mode, dataflow,
                        estimate, self._cal, geom.pool,
                        signature=self._signature_for(geom),
                    )
            results.append((
                NetworkMapping(self.network.name, selections),
                NetworkEstimate(
                    network_name=self.network.name,
                    layers=estimates,
                    instances=cfg.instances,
                ),
            ))
        return results

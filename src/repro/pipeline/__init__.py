"""Unified evaluation pipeline (cache + store + session facade).

``EvaluationCache`` memoizes the per-layer analytical model;
``EvaluationStore`` persists those memos on disk across processes and
invocations; ``PipelineSession`` chains candidates -> design point ->
compiled model -> runtime behind one lazily-evaluated object shared by
the CLI, the experiments and the examples.

Exports are resolved lazily: :mod:`repro.dse.engine` imports the cache
from this package while :mod:`repro.pipeline.session` imports the engine,
and the module-level ``__getattr__`` keeps that mutual dependency
acyclic at import time.
"""

from __future__ import annotations

__all__ = [
    "CacheStats",
    "EvaluationCache",
    "EvaluationStore",
    "PipelineSession",
    "SegmentSummary",
    "StoreStats",
    "layer_signature",
]

_EXPORTS = {
    "CacheStats": "repro.pipeline.cache",
    "EvaluationCache": "repro.pipeline.cache",
    "layer_signature": "repro.pipeline.cache",
    "EvaluationStore": "repro.pipeline.store",
    "SegmentSummary": "repro.pipeline.store",
    "StoreStats": "repro.pipeline.store",
    "PipelineSession": "repro.pipeline.session",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(__all__)

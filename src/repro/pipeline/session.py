"""The shared evaluation session: one network, one device, one cache.

Before this facade existed, ``cli.py``, every experiment and every
example re-implemented the same glue: resolve the device, look up the
calibration profile, run the DSE (or pin the paper configuration), map
the network, generate parameters, compile, build a host runtime, push a
probe image through the simulator.  ``PipelineSession`` owns that chain:

    network + device + options  ->  candidates -> design point ->
    parameters -> compiled model -> runtime -> simulation

Every stage is computed lazily, exactly once, and cached on the session;
the calibration profile is resolved a single time in ``__init__`` and
threaded through every downstream call.  A session can be pinned to an
explicit configuration (and optionally an explicit mapping) to bypass
the DSE — that is how the paper-configuration experiments share the same
code path as the DSE-driven ones.

Sessions may share an :class:`~repro.pipeline.cache.EvaluationCache`,
which is how device sweeps and multi-objective studies avoid
re-evaluating identical (layer, config) points.  A session may also be
backed by an on-disk :class:`~repro.pipeline.store.EvaluationStore`
(``store=`` path or store instance): the cache is warmed from the store
at construction and the computed delta is flushed back by
:meth:`PipelineSession.close` — use the session as a context manager to
get both ends for free.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.arch.params import AcceleratorConfig
from repro.dse.engine import DseResult, map_network, run_dse
from repro.dse.space import DseOptions, explore_hardware
from repro.errors import ReproError
from repro.estimator.calibration import get_calibration
from repro.estimator.latency import NetworkEstimate, estimate_network
from repro.fpga import get_device
from repro.fpga.device import FpgaDevice
from repro.ir.graph import Network
from repro.mapping.strategy import NetworkMapping
from repro.pipeline.cache import CacheStats, EvaluationCache
from repro.pipeline.store import EvaluationStore


class PipelineSession:
    """Lazily-computed, cached artifacts of one (network, device) pair.

    Parameters
    ----------
    network:
        A :class:`Network`, or a zoo model name / model-JSON path.
    device:
        An :class:`FpgaDevice`, or an FPGA catalog name.
    options:
        DSE knobs; defaults to :class:`DseOptions()`.
    cfg:
        Pin the accelerator configuration instead of running the DSE.
    mapping:
        Pin the per-layer mapping (requires ``cfg``); otherwise Step 2
        derives the best mapping for the pinned/selected configuration.
    compiler_options:
        Forwarded to :func:`repro.compiler.compile_network`.
    params:
        Pre-generated parameter dict; defaults to
        ``generate_parameters(network, seed=seed)`` on first use.
    seed:
        Parameter-generation seed (ignored when ``params`` is given).
    cache:
        Shared :class:`EvaluationCache`; a fresh one is created if
        omitted.  Pass one cache to several sessions to share layer
        estimates across scenarios.
    store:
        An :class:`EvaluationStore` or a cache-directory path.  The
        cache is warmed from it immediately; :meth:`close` (or leaving
        a ``with`` block) flushes the entries this session computed.
    """

    def __init__(
        self,
        network: Union[Network, str],
        device: Union[FpgaDevice, str],
        options: Optional[DseOptions] = None,
        cfg: Optional[AcceleratorConfig] = None,
        mapping: Optional[NetworkMapping] = None,
        compiler_options=None,
        params: Optional[Dict[str, np.ndarray]] = None,
        seed: int = 2020,
        cache: Optional[EvaluationCache] = None,
        store: Optional[Union[EvaluationStore, str, Path]] = None,
    ):
        if isinstance(device, str):
            device = get_device(device)
        if isinstance(network, str):
            network = _load_network(network)
        if mapping is not None and cfg is None:
            raise ReproError(
                "a pinned mapping requires a pinned cfg "
                "(otherwise the DSE would pick a different one)"
            )
        self.network = network
        self.device = device
        self.options = options or DseOptions()
        #: Calibration resolved once per session, threaded through every
        #: map/estimate/DSE call (no per-call registry lookups).
        self.calibration = get_calibration(device.name)
        self.cache = cache if cache is not None else EvaluationCache()
        if isinstance(store, (str, Path)):
            store = EvaluationStore(store)
        self.store = store
        if store is not None:
            store.warm(self.cache)
        self.compiler_options = compiler_options
        self.seed = seed
        self._cfg = cfg
        self._mapping = mapping
        self._params = params
        self._candidates = None
        self._dse: Optional[DseResult] = None
        self._estimate: Optional[NetworkEstimate] = None
        self._compiled = None
        self._runtimes: Dict[bool, object] = {}
        self._sim_results: Dict[bool, object] = {}

    # -- design-point stages --------------------------------------------

    def candidates(self):
        """Step 1: the feasible hardware candidates (cached)."""
        if self._candidates is None:
            self._candidates = explore_hardware(
                self.device, self.options, self.calibration
            )
        return self._candidates

    def dse(self) -> DseResult:
        """Steps 2+3: the selected design point (cached).

        Raises :class:`~repro.errors.ReproError` when the session was
        pinned to an explicit configuration — the DSE result would
        silently disagree with the pinned design.
        """
        if self._cfg is not None:
            raise ReproError(
                "session is pinned to an explicit cfg; dse() would select "
                "a different design — use .cfg/.mapping()/.estimate()"
            )
        if self._dse is None:
            self._dse = run_dse(
                self.device,
                self.network,
                self.options,
                cal=self.calibration,
                cache=self.cache,
                candidates=self.candidates(),
            )
        return self._dse

    @property
    def cfg(self) -> AcceleratorConfig:
        """The pinned or DSE-selected accelerator configuration."""
        if self._cfg is not None:
            return self._cfg
        return self.dse().cfg

    def mapping(self) -> NetworkMapping:
        """Per-layer (mode, dataflow) selection for :attr:`cfg`."""
        if self._mapping is None:
            if self._cfg is None:
                self._mapping = self.dse().mapping
            else:
                self._mapping, self._estimate = map_network(
                    self._cfg,
                    self.device,
                    self.network,
                    self.calibration,
                    cache=self.cache,
                )
        return self._mapping

    def estimate(self) -> NetworkEstimate:
        """Analytical network estimate for :attr:`cfg` + :meth:`mapping`."""
        if self._estimate is None:
            if self._cfg is None:
                self._estimate = self.dse().estimate
            else:
                mapping = self.mapping()
                if self._estimate is None:  # pinned mapping path
                    self._estimate = estimate_network(
                        self._cfg,
                        self.device,
                        self.network,
                        mapping,
                        self.calibration,
                        self.cache,
                    )
        return self._estimate

    # -- deployment stages ----------------------------------------------

    def parameters(self) -> Dict[str, np.ndarray]:
        """Model parameters (generated once from :attr:`seed`)."""
        if self._params is None:
            from repro.runtime.params import generate_parameters

            self._params = generate_parameters(self.network, seed=self.seed)
        return self._params

    def compiled(self):
        """The compiled model for the selected design point (cached)."""
        if self._compiled is None:
            from repro.compiler import compile_network

            self._compiled = compile_network(
                self.network,
                self.cfg,
                self.mapping(),
                self.parameters(),
                self.compiler_options,
            )
        return self._compiled

    def runtime(self, functional: bool = True):
        """A :class:`~repro.runtime.host.HostRuntime` (one per mode)."""
        if functional not in self._runtimes:
            from repro.runtime.host import HostRuntime

            self._runtimes[functional] = HostRuntime.from_session(
                self, functional=functional
            )
        return self._runtimes[functional]

    def infer(self, image: np.ndarray, functional: bool = True):
        """Run one image through the deployed design."""
        return self.runtime(functional).infer(image)

    def simulate(self, functional: bool = False):
        """Cycle-approximate simulation of one (zero) probe image.

        The timing of the folded accelerator is data-independent, so the
        probe result is cached per ``functional`` mode.
        """
        if functional not in self._sim_results:
            image = np.zeros(self.network.input_shape.as_tuple())
            result = self.infer(image, functional=functional)
            if result.sim is None:
                raise ReproError(
                    f"{self.network.name}: no accelerator segments to "
                    "simulate"
                )
            self._sim_results[functional] = result.sim
        return self._sim_results[functional]

    # -- multi-shard deployment ------------------------------------------

    def clone(self) -> "PipelineSession":
        """A cheap deployment twin for multi-shard serving.

        The clone shares every *immutable* artifact this session has
        already computed — candidates, DSE result, mapping, estimate,
        parameters and the compiled model — plus the evaluation cache
        and the resolved calibration, so deploying N shards of one
        design costs one DSE + one compilation, not N.  It gets fresh
        runtime / simulation slots because a
        :class:`~repro.runtime.host.HostRuntime` owns mutable DRAM
        state that two shards must never share.  Clones are not
        store-backed: the parent owns the flush, and the shared cache
        already carries anything a clone computes.

        Artifacts not yet computed are *not* shared retroactively —
        call :meth:`compiled` before cloning when the shards should
        reuse one compiled model.
        """
        twin = PipelineSession(
            self.network,
            self.device,
            self.options,
            cfg=self._cfg,
            mapping=self._mapping if self._cfg is not None else None,
            compiler_options=self.compiler_options,
            params=self._params,
            seed=self.seed,
            cache=self.cache,
        )
        twin.calibration = self.calibration
        twin._candidates = self._candidates
        twin._dse = self._dse
        twin._mapping = self._mapping
        twin._estimate = self._estimate
        twin._compiled = self._compiled
        return twin

    # -- persistence -----------------------------------------------------

    def close(self) -> int:
        """Flush the cache's computed delta to the backing store.

        Returns the number of entries persisted (0 without a store or
        when everything came warm).  Idempotent: a second close flushes
        only what was computed since the first.
        """
        if self.store is None:
            return 0
        return self.store.flush(self.cache)

    def __enter__(self) -> "PipelineSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reporting -------------------------------------------------------

    @property
    def cache_stats(self) -> CacheStats:
        """Cumulative cache counters of this session's cache."""
        return self.cache.stats

    def describe(self) -> str:
        state = "pinned" if self._cfg is not None else "dse"
        return (
            f"PipelineSession({self.network.name} on {self.device.name}, "
            f"{state} cfg, cache {self.cache_stats.describe()})"
        )


def _load_network(spec: str) -> Network:
    """Resolve a zoo model name or a model-JSON path."""
    from pathlib import Path

    from repro.ir import load_network, zoo

    if spec in zoo.MODELS:
        return zoo.get_model(spec)
    path = Path(spec)
    if path.exists():
        return load_network(path)
    raise ReproError(
        f"unknown model {spec!r}: not in the zoo {sorted(zoo.MODELS)} "
        "and no such file"
    )

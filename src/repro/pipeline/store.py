"""Disk persistence for the evaluation cache (warm sweeps over sweeps).

The in-memory :class:`~repro.pipeline.cache.EvaluationCache` dies with
the process, so repeated CLI invocations over the model zoo — the exact
workload of ``experiments/*`` and ``benchmarks/*`` — re-derive every
estimate.  :class:`EvaluationStore` persists both memo levels under the
*same signatures* the in-memory cache keys on, so a warmed session
replays a sweep out of dictionary lookups.

On-disk format
--------------

A store is a *directory* of append-only **segment** files:

* every :meth:`flush` writes the cache's dirty delta as one new segment
  under a unique name (pid + monotonic counter + random suffix), via
  write-to-temp + :func:`os.replace` — readers never observe a partial
  file and concurrent writers never clobber each other because they
  write distinct segments;
* :meth:`load` merges every readable segment (first writer of a key
  wins, in segment-name order).  A segment with a bad magic, failed
  checksum, truncated payload or mismatched :data:`STORE_VERSION` is
  *skipped and counted*, never fatal — a cache is always allowed to be
  cold;
* :meth:`compact` rewrites the merged contents as a single segment and
  unlinks the ones it subsumed (concurrent readers tolerate the
  disappearance: missing files are skipped like corrupt ones).

Each segment is ``MAGIC || crc32(payload) || payload`` where the payload
pickles ``{"version", "estimates", "partitions"}``.  Pickle is the right
codec here: keys and values are frozen dataclasses
(:class:`~repro.arch.params.AcceleratorConfig`,
:class:`~repro.estimator.latency.LayerEstimate`,
:class:`~repro.mapping.partition.LayerPartition`,
:class:`~repro.estimator.calibration.CalibrationProfile`) plus memoized
:class:`~repro.errors.ReproError` instances, all of which round-trip by
value.  ``STORE_VERSION`` must be bumped whenever persisted results
could change meaning: a persisted type or the signature layout changing
shape, *or any change to the analytical model equations themselves*
(``repro.estimator``, ``repro.mapping.partition``) — the cache key
cannot see a coefficient edit, so the version is what keeps a warm
cache dir from serving estimates of a model that no longer exists.
Stale entries must be rejected, not deserialized into lies.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.errors import ReproError

#: Bump on any change to the cache signatures, the pickled value types
#: OR the analytical model equations (see the module docstring);
#: readers reject segments written under a different version.
STORE_VERSION = 1

#: Leading bytes of every segment file.
MAGIC = b"repro-store\n"

_CRC = struct.Struct("<I")
_SUFFIX = ".seg"


@dataclass(frozen=True)
class StoreStats:
    """Snapshot of one store's load/flush counters.

    ``segments_skipped`` counts unreadable segments (corrupt, truncated,
    foreign or version-mismatched files) tolerated during a load.
    """

    segments_loaded: int = 0
    segments_skipped: int = 0
    estimates_loaded: int = 0
    partitions_loaded: int = 0
    flushes: int = 0
    estimates_flushed: int = 0
    partitions_flushed: int = 0

    def describe(self) -> str:
        return (
            f"{self.estimates_loaded} estimates + "
            f"{self.partitions_loaded} partitions from "
            f"{self.segments_loaded} segment(s) "
            f"({self.segments_skipped} skipped), "
            f"{self.estimates_flushed} estimates + "
            f"{self.partitions_flushed} partitions flushed "
            f"in {self.flushes} segment(s)"
        )


@dataclass(frozen=True)
class SegmentSummary:
    """Inspection view of one on-disk segment (``repro cache info``)."""

    name: str
    size_bytes: int
    estimates: int
    partitions: int
    readable: bool

    @property
    def entries(self) -> int:
        return self.estimates + self.partitions


class EvaluationStore:
    """A directory of persisted :class:`EvaluationCache` entries.

    Parameters
    ----------
    path:
        The cache directory (created on first use).
    version:
        Accepted segment version; defaults to :data:`STORE_VERSION`.
        Exposed for tests — production callers never pass it.
    """

    def __init__(
        self, path: Union[str, Path], version: int = STORE_VERSION
    ) -> None:
        self.path = Path(path)
        if self.path.exists() and not self.path.is_dir():
            raise ReproError(
                f"cache dir {self.path} exists and is not a directory"
            )
        self.version = version
        self._lock = threading.Lock()
        self._counter = 0
        self._segments_loaded = 0
        self._segments_skipped = 0
        self._estimates_loaded = 0
        self._partitions_loaded = 0
        self._flushes = 0
        self._estimates_flushed = 0
        self._partitions_flushed = 0

    # -- reading ---------------------------------------------------------

    def segments(self):
        """Current segment paths, in deterministic (name) order."""
        if not self.path.is_dir():
            return []
        return sorted(self.path.glob(f"*{_SUFFIX}"))

    def load(self) -> Tuple[Dict, Dict]:
        """Merged ``(estimates, partitions)`` of every readable segment.

        First writer of a key wins (segment-name order), matching the
        in-memory cache's first-writer-wins insert; later duplicates of
        a key are byte-equivalent anyway because entries are pure
        functions of their signature.
        """
        estimates: Dict = {}
        partitions: Dict = {}
        loaded = skipped = 0
        for segment in self.segments():
            payload = self._read_segment(segment)
            if payload is None:
                skipped += 1
                continue
            loaded += 1
            for key, entry in payload["estimates"].items():
                estimates.setdefault(key, entry)
            for key, entry in payload["partitions"].items():
                partitions.setdefault(key, entry)
        with self._lock:
            self._segments_loaded += loaded
            self._segments_skipped += skipped
            self._estimates_loaded += len(estimates)
            self._partitions_loaded += len(partitions)
        return estimates, partitions

    def warm(self, cache) -> int:
        """Load the store into ``cache`` (entries added, not counted as
        hits or dirty); returns the number of entries added."""
        estimates, partitions = self.load()
        return cache.warm(estimates, partitions)

    def _read_segment(self, segment: Path):
        """Decoded payload dict, or ``None`` for anything unreadable."""
        try:
            blob = segment.read_bytes()
        except OSError:
            return None  # vanished (compaction) or unreadable
        if not blob.startswith(MAGIC):
            return None
        body = blob[len(MAGIC):]
        if len(body) < _CRC.size:
            return None
        (crc,) = _CRC.unpack_from(body)
        payload = body[_CRC.size:]
        if zlib.crc32(payload) != crc:
            return None
        try:
            decoded = pickle.loads(payload)
        except Exception:
            return None
        if not isinstance(decoded, dict):
            return None
        if decoded.get("version") != self.version:
            return None
        if not isinstance(decoded.get("estimates"), dict):
            return None
        if not isinstance(decoded.get("partitions"), dict):
            return None
        return decoded

    def inspect(self) -> Tuple[List[SegmentSummary], Dict, Dict]:
        """One-pass ``(summaries, estimates, partitions)`` inspection.

        Each segment is read and decoded exactly once: per-segment
        counts/sizes land in the summaries while the entries merge
        first-writer-wins into the returned dicts (the warm-load
        view), so ``repro cache info`` does not pay
        :meth:`segment_summaries` + :meth:`load` double decoding.
        Unreadable segments (corrupt, truncated, foreign, wrong
        version) appear with ``readable=False`` and zero counts;
        segments vanishing mid-scan (concurrent compaction) are
        skipped entirely.  Load counters are untouched — inspection is
        invisible to :attr:`stats`.
        """
        summaries: List[SegmentSummary] = []
        estimates: Dict = {}
        partitions: Dict = {}
        for segment in self.segments():
            try:
                size = segment.stat().st_size
            except OSError:
                continue  # vanished under a concurrent compaction
            payload = self._read_segment(segment)
            if payload is None:
                summaries.append(
                    SegmentSummary(segment.name, size, 0, 0, False)
                )
                continue
            summaries.append(
                SegmentSummary(
                    segment.name,
                    size,
                    len(payload["estimates"]),
                    len(payload["partitions"]),
                    True,
                )
            )
            for key, entry in payload["estimates"].items():
                estimates.setdefault(key, entry)
            for key, entry in payload["partitions"].items():
                partitions.setdefault(key, entry)
        return summaries, estimates, partitions

    def segment_summaries(self) -> List[SegmentSummary]:
        """Per-segment entry counts and sizes (see :meth:`inspect`)."""
        return self.inspect()[0]

    # -- writing ---------------------------------------------------------

    def flush(self, cache) -> int:
        """Persist ``cache``'s dirty delta as one new segment.

        Returns the number of entries written (0 writes no file), so
        flushing an all-warm cache is free.  If the segment write fails
        (disk full, permissions) the delta is re-marked dirty so a
        later flush can still persist it.
        """
        estimates, partitions = cache.take_dirty()
        try:
            return self.flush_entries(estimates, partitions)
        except BaseException:
            cache.mark_dirty(estimates, partitions)
            raise

    def flush_entries(self, estimates: Dict, partitions: Dict) -> int:
        """Write one segment holding exactly these entries."""
        total = len(estimates) + len(partitions)
        if not total:
            return 0
        payload = pickle.dumps(
            {
                "version": self.version,
                "estimates": estimates,
                "partitions": partitions,
            },
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        self.path.mkdir(parents=True, exist_ok=True)
        name = self._segment_name()
        tmp = self.path / (name + ".tmp")
        tmp.write_bytes(MAGIC + _CRC.pack(zlib.crc32(payload)) + payload)
        os.replace(tmp, self.path / name)
        with self._lock:
            self._flushes += 1
            self._estimates_flushed += len(estimates)
            self._partitions_flushed += len(partitions)
        return total

    def compact(self) -> int:
        """Merge all current segments into one; returns segments removed.

        Safe against concurrent readers (they skip vanished files) but
        assumes a single compactor — run it from the CLI, not workers.
        """
        before = self.segments()
        if len(before) <= 1:
            return 0
        estimates, partitions = self.load()
        self.flush_entries(estimates, partitions)
        removed = 0
        for segment in before:
            try:
                segment.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def _segment_name(self) -> str:
        with self._lock:
            self._counter += 1
            counter = self._counter
        return (
            f"{os.getpid():08d}-{counter:06d}-"
            f"{os.urandom(4).hex()}{_SUFFIX}"
        )

    # -- reporting -------------------------------------------------------

    @property
    def stats(self) -> StoreStats:
        with self._lock:
            return StoreStats(
                segments_loaded=self._segments_loaded,
                segments_skipped=self._segments_skipped,
                estimates_loaded=self._estimates_loaded,
                partitions_loaded=self._partitions_loaded,
                flushes=self._flushes,
                estimates_flushed=self._estimates_flushed,
                partitions_flushed=self._partitions_flushed,
            )

    def describe(self) -> str:
        return f"store {self.path}: {self.stats.describe()}"

"""Memoized layer estimation (the pipeline's innermost cache).

``estimate_layer`` is the hot function of the DSE: a full sweep calls it
once per (candidate x layer x mode x dataflow) plus once more per layer
for the final network estimate.  The cache memoizes it at two levels:

* the **estimate level** keys on everything the result depends on — the
  layer's *shape signature* (geometry only, not identity: VGG-style
  networks repeat convolution shapes heavily, so conv5_1 and conv5_2
  share one entry), the accelerator configuration, the device's memory
  system, mode, dataflow, fused-pool factor and the calibration profile
  (calibration feeds the resource model, not the latency equations —
  see ``estimate_layer`` — but it stays in the key so a future
  calibrated latency term can never read stale entries, in memory or
  from a persisted store);
* the **partition level** keys on the subset the group geometry depends
  on — shape, (PI, PO, PT), buffer sizes and mode.  A partition is
  therefore shared across both dataflows, all data widths, all clocks
  and every instance count of the same PE geometry, which is where a
  candidate sweep spends most of its redundant work.

Failures are memoized too: an infeasible combination raises an equal
:class:`~repro.errors.ReproError` on every retry, so both levels store
the original exception and re-raise a fresh copy (relabelled with the
requesting layer's name on shape-deduplicated hits) instead of
re-deriving it.

Cache hits whose stored entry came from a *different* layer name are
counted separately (``shape_dedup_hits``) — they measure exactly the
within-network shape deduplication.  On such hits the estimate is
re-labelled with the requested layer's name, so cached and uncached
paths return byte-identical results.

Entries are plain ``(value, error, from_name)`` triples of frozen
dataclasses and :class:`~repro.errors.ReproError` instances, so they are
pickleable by value.  That is what lets a cache be **warmed** from an
on-disk :class:`~repro.pipeline.store.EvaluationStore`, hand its *dirty
delta* (entries computed since the last flush) back to the store, ship
entry snapshots to process-pool DSE workers, and **merge** the deltas
those workers return.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.arch.params import AcceleratorConfig
from repro.errors import ReproError
from repro.estimator.calibration import CalibrationProfile
from repro.estimator.latency import LayerEstimate, estimate_layer
from repro.fpga.device import FpgaDevice
from repro.ir.graph import LayerInfo
from repro.mapping.partition import LayerPartition, partition_layer


def layer_signature(info: LayerInfo, fused_pool: int = 1) -> Tuple:
    """Hashable geometry key of one compute layer.

    Two layers with equal signatures are indistinguishable to the
    analytical model: same input/output shapes, kernel, stride, padding,
    fused activation/pooling and op count.  Names are deliberately
    excluded — that is what enables shape deduplication.
    """
    layer = info.layer
    kernel = getattr(layer, "kernel_size", (1, 1))
    return (
        type(layer).__name__,
        info.input_shape.as_tuple(),
        info.output_shape.as_tuple(),
        tuple(kernel),
        getattr(layer, "stride", 1),
        getattr(layer, "padding", 0),
        bool(getattr(layer, "relu", False)),
        int(fused_pool),
        info.ops,
    )


def _relabel(error: ReproError, from_name: str, to_name: str) -> ReproError:
    """A fresh copy of a memoized error, renamed for the requesting layer.

    Error messages start with the originating layer's name; on a
    shape-deduplicated hit the stored name is swapped for the requested
    one.  A new exception instance is raised every time so concurrent
    workers never share (and mutate) one object's traceback.
    """
    message = str(error)
    if from_name != to_name:
        message = message.replace(from_name, to_name)
    return type(error)(message)


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of one cache's counters.

    ``hits`` / ``misses`` count estimate-level lookups;
    ``partition_hits`` / ``partition_misses`` count the group-geometry
    memo consulted on estimate misses.  ``hit_rate`` aggregates both
    levels — the fraction of memoized lookups served without
    recomputation.
    """

    hits: int = 0
    misses: int = 0
    partition_hits: int = 0
    partition_misses: int = 0
    shape_dedup_hits: int = 0
    error_entries: int = 0

    @property
    def lookups(self) -> int:
        """Estimate-level lookups."""
        return self.hits + self.misses

    @property
    def estimate_hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def hit_rate(self) -> float:
        """Served-from-cache fraction across both memo levels."""
        total = (
            self.hits + self.misses
            + self.partition_hits + self.partition_misses
        )
        return (self.hits + self.partition_hits) / total if total else 0.0

    def __sub__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            partition_hits=self.partition_hits - other.partition_hits,
            partition_misses=self.partition_misses - other.partition_misses,
            shape_dedup_hits=self.shape_dedup_hits - other.shape_dedup_hits,
            error_entries=self.error_entries - other.error_entries,
        )

    def describe(self) -> str:
        return (
            f"{self.hits}/{self.lookups} estimate hits "
            f"({self.estimate_hit_rate * 100:.1f}%), "
            f"{self.partition_hits}/"
            f"{self.partition_hits + self.partition_misses} partition hits, "
            f"{self.hit_rate * 100:.1f}% overall, "
            f"{self.shape_dedup_hits} from shape dedup, "
            f"{self.error_entries} infeasible entries"
        )


class EvaluationCache:
    """Memoizes :func:`repro.estimator.latency.estimate_layer`.

    Thread-safe: entries are plain dict items written under a lock, so a
    cache may be shared by the parallel DSE workers.  Two workers racing
    on the same key at worst compute the entry twice; both arrive at the
    identical value, so correctness is unaffected.
    """

    def __init__(self) -> None:
        self._estimates = {}
        self._partitions = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._part_hits = 0
        self._part_misses = 0
        self._dedup_hits = 0
        self._error_entries = 0  # error-valued estimate entries (O(1) stats)
        # Keys inserted by computation or merge since the last
        # take_dirty() — the delta an EvaluationStore persists.  Warmed
        # keys are deliberately absent: they came *from* the store.
        self._dirty_estimates = set()
        self._dirty_partitions = set()

    def __len__(self) -> int:
        return len(self._estimates)

    def partition(
        self,
        cfg: AcceleratorConfig,
        info: LayerInfo,
        mode: str,
        fused_pool: int = 1,
    ) -> LayerPartition:
        """Cached drop-in for ``partition_layer`` (same raises)."""
        key = (
            layer_signature(info, fused_pool),
            cfg.pi,
            cfg.po,
            cfg.pt,
            cfg.input_buffer_vecs,
            cfg.weight_buffer_vecs,
            cfg.output_buffer_vecs,
            mode,
        )
        entry = self._partitions.get(key)
        if entry is not None:
            partition, error, from_name = entry
            with self._lock:
                self._part_hits += 1
            if error is not None:
                raise _relabel(error, from_name, info.layer.name)
            return partition
        try:
            partition = partition_layer(cfg, info, mode, fused_pool)
        except ReproError as exc:
            with self._lock:
                self._part_misses += 1
                self._partitions[key] = (None, exc, info.layer.name)
                self._dirty_partitions.add(key)
            raise
        with self._lock:
            self._part_misses += 1
            self._partitions[key] = (partition, None, info.layer.name)
            self._dirty_partitions.add(key)
        return partition

    def estimate(
        self,
        cfg: AcceleratorConfig,
        device: FpgaDevice,
        info: LayerInfo,
        mode: str,
        dataflow: str,
        cal: Optional[CalibrationProfile] = None,
        fused_pool: int = 1,
    ) -> LayerEstimate:
        """Cached drop-in for ``estimate_layer`` (same raises)."""
        key = (
            layer_signature(info, fused_pool),
            cfg,
            device.name,
            device.memory,
            mode,
            dataflow,
            cal,
        )
        entry = self._estimates.get(key)
        if entry is not None:
            estimate, error, from_name = entry
            with self._lock:
                self._hits += 1
                if from_name != info.layer.name:
                    self._dedup_hits += 1
            if error is not None:
                raise _relabel(error, from_name, info.layer.name)
            if estimate.layer_name != info.layer.name:
                estimate = replace(estimate, layer_name=info.layer.name)
            return estimate
        try:
            partition = self.partition(cfg, info, mode, fused_pool)
            estimate = estimate_layer(
                cfg, device, info, mode, dataflow, cal, fused_pool,
                partition=partition,
            )
        except ReproError as exc:
            with self._lock:
                self._misses += 1
                self._estimates[key] = (None, exc, info.layer.name)
                self._dirty_estimates.add(key)
                self._error_entries += 1
            raise
        with self._lock:
            self._misses += 1
            self._estimates[key] = (estimate, None, info.layer.name)
            self._dirty_estimates.add(key)
        return estimate

    def offer_estimate(
        self,
        cfg: AcceleratorConfig,
        device: FpgaDevice,
        info: LayerInfo,
        mode: str,
        dataflow: str,
        estimate: LayerEstimate,
        cal: Optional[CalibrationProfile] = None,
        fused_pool: int = 1,
        signature: Optional[tuple] = None,
    ) -> bool:
        """Insert an externally computed estimate (the vectorized DSE
        path materialises its selected rows through here).

        The key matches :meth:`estimate`'s exactly, so offered rows are
        indistinguishable from computed ones to later lookups, to
        :meth:`take_dirty`/store flushes and to process-worker
        snapshots.  Present keys win (first writer, like :meth:`warm`
        and :meth:`merge`); counters are untouched — an offer is
        neither a hit nor a miss.  Returns ``True`` when inserted.

        ``signature`` may carry a precomputed
        ``layer_signature(info, fused_pool)`` — the signature is
        per-layer, not per-candidate, so batch callers amortise it
        across hundreds of offers.
        """
        key = (
            signature if signature is not None
            else layer_signature(info, fused_pool),
            cfg,
            device.name,
            device.memory,
            mode,
            dataflow,
            cal,
        )
        with self._lock:
            if key in self._estimates:
                return False
            self._estimates[key] = (estimate, None, estimate.layer_name)
            self._dirty_estimates.add(key)
            return True

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                partition_hits=self._part_hits,
                partition_misses=self._part_misses,
                shape_dedup_hits=self._dedup_hits,
                error_entries=self._error_entries,
            )

    def clear(self) -> None:
        with self._lock:
            self._estimates.clear()
            self._partitions.clear()
            self._dirty_estimates.clear()
            self._dirty_partitions.clear()
            self._hits = self._misses = self._dedup_hits = 0
            self._part_hits = self._part_misses = 0
            self._error_entries = 0

    # -- persistence / cross-process protocol ----------------------------

    def warm(self, estimates: dict, partitions: dict) -> int:
        """Pre-populate from store-loaded entries; returns entries added.

        Present keys win (a computed entry is at least as fresh as a
        persisted one) and nothing becomes dirty or counts as a hit —
        warming is invisible to both the counters and the next flush.
        """
        added = 0
        with self._lock:
            for key, entry in estimates.items():
                if key not in self._estimates:
                    self._estimates[key] = entry
                    if entry[1] is not None:
                        self._error_entries += 1
                    added += 1
            for key, entry in partitions.items():
                if key not in self._partitions:
                    self._partitions[key] = entry
                    added += 1
        return added

    def take_dirty(self) -> Tuple[dict, dict]:
        """Entries computed or merged since the last call (and un-dirty
        them) — the delta an :class:`EvaluationStore` flush persists."""
        with self._lock:
            estimates = {
                key: self._estimates[key]
                for key in self._dirty_estimates
                if key in self._estimates
            }
            partitions = {
                key: self._partitions[key]
                for key in self._dirty_partitions
                if key in self._partitions
            }
            self._dirty_estimates.clear()
            self._dirty_partitions.clear()
        return estimates, partitions

    def mark_dirty(self, estimate_keys, partition_keys) -> None:
        """Re-flag present keys as dirty (store flush-failure rollback)."""
        with self._lock:
            self._dirty_estimates.update(
                key for key in estimate_keys if key in self._estimates
            )
            self._dirty_partitions.update(
                key for key in partition_keys if key in self._partitions
            )

    def snapshot_entries(self) -> Tuple[dict, dict]:
        """Shallow copies of both memo levels (for seeding workers)."""
        with self._lock:
            return dict(self._estimates), dict(self._partitions)

    def merge(
        self,
        estimates: dict,
        partitions: dict,
        stats: Optional[CacheStats] = None,
    ) -> int:
        """Absorb a worker's cache delta; returns entries added.

        New keys are inserted *dirty* (they were computed, just in
        another process, so a store flush must see them); present keys
        win exactly as in :meth:`warm`.  ``stats`` — the worker's
        counter delta — is accumulated so process-pool runs report
        honest hit/miss totals.  (They can differ slightly from a
        single-process run's: workers that independently derive the
        same shared key each count a miss where one thread would have
        hit.  Entries and selections are unaffected.)
        """
        added = 0
        with self._lock:
            for key, entry in estimates.items():
                if key not in self._estimates:
                    self._estimates[key] = entry
                    self._dirty_estimates.add(key)
                    if entry[1] is not None:
                        self._error_entries += 1
                    added += 1
            for key, entry in partitions.items():
                if key not in self._partitions:
                    self._partitions[key] = entry
                    self._dirty_partitions.add(key)
                    added += 1
            if stats is not None:
                self._hits += stats.hits
                self._misses += stats.misses
                self._part_hits += stats.partition_hits
                self._part_misses += stats.partition_misses
                self._dedup_hits += stats.shape_dedup_hits
        return added

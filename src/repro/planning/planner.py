"""The two-tier capacity-planning driver.

``plan_capacity`` wires the planning package together:

1. **resolve** — each :class:`~repro.planning.grid.KindSpec` becomes a
   :class:`DeviceKind`: the paper configuration of the device (or a DSE
   pick for non-paper devices), a pinned
   :class:`~repro.pipeline.session.PipelineSession`, the analytical
   Eq. 12-15 latency (one vectorized
   :class:`~repro.estimator.vectorized.BatchLayerEstimator` call per
   cfg, memoized through the shared
   :class:`~repro.pipeline.cache.EvaluationCache` and any
   :class:`~repro.pipeline.store.EvaluationStore` behind it) and the
   simulated per-image probe the admissible bounds need;
2. **Tier A** — the whole :class:`~repro.planning.grid.PlanGrid` goes
   through :class:`~repro.planning.scorer.AnalyticPlanScorer` in one
   vectorized call; pruned plans are out (provably infeasible), kept
   plans are ranked by the surrogate (feasible first, then billed
   shard-seconds, projected p99, grid index);
3. **Tier B** — the top-K survivors replay through the event kernel
   (:mod:`repro.planning.replay`), and the
   :class:`ProvisioningPlan` re-ranks them by *replayed* feasibility,
   billed shard-seconds and p99, surrogate columns alongside so the
   surrogate's error stays visible.

The report also emits autoscaler settings (min/max shards and a target)
so a plan drops straight into ``repro serve --autoscale`` — see
``docs/serving.md``.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.compiler import CompilerOptions
from repro.errors import DeviceError, PlanningError
from repro.estimator.vectorized import BatchLayerEstimator
from repro.fpga import FpgaDevice, get_device
from repro.ir.graph import Network
from repro.pipeline.cache import EvaluationCache
from repro.pipeline.session import PipelineSession, _load_network
from repro.pipeline.store import EvaluationStore
from repro.planning.grid import KindSpec, PlanGrid, parse_devices
from repro.planning.replay import (
    PLAN_EXECUTORS,
    ReplayJob,
    _ReplayState,
    replay_finalists,
)
from repro.planning.scorer import (
    AnalyticPlanScorer,
    ArrivalProfile,
    PRUNE_REASONS,
)
from repro.serving.scheduler import POLICIES
from repro.serving.shard import Shard
from repro.serving.traffic import (
    TRAFFIC_MODELS,
    Request,
    TraceSource,
    make_requests,
)


class DeviceKind:
    """One resolved device kind of the fleet.

    Owns the pinned session every shard of this kind clones from, the
    first shard itself (so the probe is simulated exactly once and
    every replica twins off it), the billing weight and — parent side
    only — the analytical Eq. 12-15 latency for the report.
    """

    def __init__(
        self,
        name: str,
        device: FpgaDevice,
        cfg,
        session: PipelineSession,
        weight: Optional[float],
    ):
        self.name = name
        self.device = device
        self.cfg = cfg
        self.session = session
        self.weight = float(
            weight if weight is not None else cfg.instances
        )
        self.shard0 = Shard(session, name=f"{name}0")
        #: Eq. 12-15 per-image latency; filled by :func:`resolve_kinds`
        #: (workers never need it).
        self.analytical_latency_s: Optional[float] = None

    @property
    def instances(self) -> int:
        return self.cfg.instances

    def probe_seconds(self) -> float:
        """Simulated per-image service time — the planner's ground
        truth, shared with every replica via the probe twin."""
        return self.shard0.probe_seconds()

    @classmethod
    def build(
        cls,
        network: Network,
        device: FpgaDevice,
        cfg,
        weight: Optional[float],
        seed: int,
        cache: Optional[EvaluationCache] = None,
        store: Optional[EvaluationStore] = None,
    ) -> "DeviceKind":
        """The picklable-payload constructor Tier B workers replay
        (network + resolved cfg round-trip through the payload; the
        quantized no-pack compile matches ``repro serve``)."""
        session = PipelineSession(
            network,
            device,
            cfg=cfg,
            compiler_options=CompilerOptions(
                quantize=True, pack_data=False
            ),
            seed=seed,
            cache=cache,
            store=store,
        )
        return cls(device.name, device, cfg, session, weight)

    def summary(self) -> dict:
        probe = self.probe_seconds()
        analytic = self.analytical_latency_s
        return {
            "device": self.name,
            "cfg": f"pi={self.cfg.pi} po={self.cfg.po} pt={self.cfg.pt}",
            "instances": self.instances,
            "weight": self.weight,
            "probe_latency_s": probe,
            "analytical_latency_s": analytic,
            "probe_over_analytical": (
                probe / analytic if analytic else None
            ),
            "shard_img_s": self.instances / probe,
        }


def resolve_kinds(
    network: Network,
    specs: Sequence[KindSpec],
    seed: int = 2020,
    cache: Optional[EvaluationCache] = None,
    store: Optional[Union[EvaluationStore, str, Path]] = None,
) -> List[DeviceKind]:
    """Specs to :class:`DeviceKind` rows, sharing one evaluation cache.

    Paper devices (``vu9p``, ``pynq-z1``) pin the Table-4 config; any
    other catalog device runs its DSE through the same cache.  Each
    cfg's analytical latency comes from one vectorized
    ``map_candidates`` call, memoized through the cache so a
    store-backed run never recomputes it.
    """
    cache = cache if cache is not None else EvaluationCache()
    if isinstance(store, (str, Path)):
        store = EvaluationStore(store)
    from repro.experiments.common import paper_config

    kinds: List[DeviceKind] = []
    for spec in specs:
        try:
            cfg, device = paper_config(spec.device)
        except DeviceError:
            device = get_device(spec.device)
            cfg = PipelineSession(
                network, device, cache=cache, seed=seed
            ).cfg
        kind = DeviceKind.build(
            network, device, cfg, spec.weight, seed,
            cache=cache, store=store,
        )
        estimator = BatchLayerEstimator(
            device, network, cal=kind.session.calibration, cache=cache
        )
        mapped = estimator.map_candidates([cfg])[0]
        if mapped is None:
            raise PlanningError(
                f"{device.name}: the resolved config maps no feasible "
                "(mode, dataflow) for some layer"
            )
        kind.analytical_latency_s = mapped[1].latency
        kinds.append(kind)
    return kinds


@dataclass(frozen=True)
class PlanOptions:
    """Knobs of one :func:`plan_capacity` run.

    Exactly one workload is required: a synthetic ``rate`` (with
    ``traffic`` model and ``requests`` count) or a replayed ``trace``.
    ``max_wait_s`` defaults to two per-image service rounds of the
    slowest kind — long enough to fill a batch at any rate the fleet
    sustains, negligible against any sensible SLO.
    """

    slo_p99_s: float
    rate: Optional[float] = None
    requests: int = 96
    traffic: str = "poisson"
    burst: int = 8
    trace: Optional[str] = None
    trace_scale: float = 1.0
    trace_loop: int = 1
    top_k: int = 5
    executor: str = "serial"
    jobs: int = 1
    policy: str = "shortest-latency"
    max_wait_s: Optional[float] = None
    batch_options: Optional[Tuple[int, ...]] = None
    seed: int = 2020
    event_budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.slo_p99_s <= 0 or not math.isfinite(self.slo_p99_s):
            raise PlanningError(
                f"--slo-p99 must be positive and finite, "
                f"got {self.slo_p99_s}"
            )
        if (self.rate is None) == (self.trace is None):
            raise PlanningError(
                "exactly one workload is required: --rate or --trace"
            )
        if self.rate is not None and (
            self.rate <= 0 or not math.isfinite(self.rate)
        ):
            raise PlanningError(
                f"--rate must be positive and finite, got {self.rate}"
            )
        if self.requests < 1:
            raise PlanningError(
                f"requests must be >= 1, got {self.requests}"
            )
        if self.traffic not in TRAFFIC_MODELS:
            raise PlanningError(
                f"unknown traffic model {self.traffic!r}; "
                f"expected one of {TRAFFIC_MODELS}"
            )
        if self.trace_scale <= 0 or not math.isfinite(self.trace_scale):
            raise PlanningError(
                f"trace scale must be positive, got {self.trace_scale}"
            )
        if self.trace_loop < 1:
            raise PlanningError(
                f"trace loop must be >= 1, got {self.trace_loop}"
            )
        if self.top_k < 1:
            raise PlanningError(
                f"--top-k must be >= 1, got {self.top_k}"
            )
        if self.executor not in PLAN_EXECUTORS:
            raise PlanningError(
                f"unknown executor {self.executor!r}; "
                f"expected one of {PLAN_EXECUTORS}"
            )
        if self.jobs < 1:
            raise PlanningError(f"jobs must be >= 1, got {self.jobs}")
        if self.policy not in POLICIES:
            raise PlanningError(
                f"unknown policy {self.policy!r}; "
                f"expected one of {POLICIES}"
            )
        if self.max_wait_s is not None and self.max_wait_s < 0:
            raise PlanningError(
                f"max_wait_s must be >= 0, got {self.max_wait_s}"
            )
        if self.event_budget is not None and self.event_budget < 1:
            raise PlanningError(
                f"event budget must be >= 1, got {self.event_budget}"
            )


def _materialise_workload(
    options: PlanOptions,
) -> Tuple[List[Request], str]:
    """The request list Tier A profiles and Tier B replays."""
    if options.trace is not None:
        source = TraceSource.load(
            options.trace,
            time_scale=options.trace_scale,
            loop=options.trace_loop,
        )
        return source.requests(), source.describe()
    requests = make_requests(
        options.traffic,
        options.requests,
        qps=options.rate,
        seed=options.seed,
        burst=options.burst,
    )
    label = (
        f"{options.traffic} x{options.requests} at "
        f"{options.rate:g} req/s (seed {options.seed})"
    )
    return requests, label


class ProvisioningPlan:
    """The final planner report: finalists ranked by replay, the
    surrogate's predictions alongside, and autoscaler settings for the
    winner.  ``to_dict`` carries ``plans_per_second`` top-level so the
    perf trajectory folds it straight in; the ``timings`` block is the
    only wall-clock-dependent part — everything else is deterministic
    in the seed."""

    def __init__(
        self,
        kinds: Sequence[DeviceKind],
        grid: PlanGrid,
        profile: ArrivalProfile,
        workload: str,
        options: PlanOptions,
        max_wait_s: float,
        pruned_counts: Dict[str, int],
        feasible_count: int,
        finalists: List[dict],
        tier_a_seconds: float,
        tier_b_seconds: float,
    ):
        self.kinds = list(kinds)
        self.grid = grid
        self.profile = profile
        self.workload = workload
        self.options = options
        self.max_wait_s = max_wait_s
        self.pruned_counts = pruned_counts
        self.feasible_count = feasible_count
        #: Replay-ranked: SLO-meeting plans first, then billed
        #: shard-seconds, replayed p99, grid index.
        self.finalists = finalists
        self.tier_a_seconds = tier_a_seconds
        self.tier_b_seconds = tier_b_seconds

    @property
    def plan_count(self) -> int:
        return len(self.grid)

    @property
    def pruned_count(self) -> int:
        return sum(self.pruned_counts.values())

    @property
    def plans_per_second(self) -> float:
        return self.plan_count / max(self.tier_a_seconds, 1e-9)

    @property
    def winner(self) -> dict:
        return self.finalists[0]

    @property
    def slo_met(self) -> bool:
        return bool(self.winner["replay"]["slo_ok"])

    def autoscaler_settings(self) -> dict:
        """Settings a ``repro serve --autoscale`` run of the winning
        mix would use: scale between the smallest prefix of the mix
        that covers the arrival rate and the full mix, targeting the
        planned SLO."""
        winner = self.winner
        counts = winner["counts"]
        batch = winner["max_batch"]
        shards = []  # (effective img/s, kind name) per deployed shard
        for kind in self.kinds:
            rounds = math.ceil(batch / kind.instances)
            rate = batch / (rounds * kind.probe_seconds())
            shards.extend([rate] * counts[kind.name])
        shards.sort(reverse=True)
        total = len(shards)
        min_shards = total
        if math.isfinite(self.profile.rate):
            covered = 0.0
            for index, rate in enumerate(shards, start=1):
                covered += rate
                if covered >= self.profile.rate:
                    min_shards = index
                    break
        return {
            "min_shards": min_shards,
            "max_shards": total,
            "target_p99_s": self.options.slo_p99_s,
            "max_batch": batch,
            "max_wait_s": self.max_wait_s,
            "policy": self.options.policy,
        }

    def to_dict(self) -> dict:
        winner = self.winner
        return {
            "devices": [kind.summary() for kind in self.kinds],
            "workload": self.workload,
            "profile": {
                "count": self.profile.count,
                "rate": (
                    self.profile.rate
                    if math.isfinite(self.profile.rate)
                    else None
                ),
                "last_arrival_s": self.profile.last_arrival_s,
            },
            "slo_p99_s": self.options.slo_p99_s,
            "max_wait_s": self.max_wait_s,
            "policy": self.options.policy,
            "grid": self.grid.describe(),
            "plan_count": self.plan_count,
            "pruned": dict(self.pruned_counts),
            "feasible_count": self.feasible_count,
            "finalists": self.finalists,
            "winner": winner,
            "slo_met": self.slo_met,
            "autoscaler": self.autoscaler_settings(),
            # Trajectory summary fields (wall-clock dependent ones
            # grouped under "timings" plus the plans_per_second figure
            # the bench floor tracks).
            "count": winner["replay"]["served"],
            "p99_latency_s": winner["replay"]["p99_latency_s"],
            "shard_seconds": winner["replay"]["shard_seconds"],
            "billed_shard_seconds": winner["replay"][
                "billed_shard_seconds"
            ],
            "plans_per_second": self.plans_per_second,
            "timings": {
                "tier_a_seconds": self.tier_a_seconds,
                "tier_b_seconds": self.tier_b_seconds,
            },
        }

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    def describe(self) -> str:
        lines = [
            f"workload: {self.workload}",
            f"SLO: p99 <= {self.options.slo_p99_s * 1e3:.3f} ms "
            f"({self.options.policy}, max_wait "
            f"{self.max_wait_s * 1e6:.1f} us)",
            f"grid: {self.grid.describe()}",
            "tier A: scored {count} plans in {sec:.3f} s "
            "({pps:,.0f} plans/s); pruned {pruned} "
            "({reasons}), {feasible} surrogate-feasible".format(
                count=self.plan_count,
                sec=self.tier_a_seconds,
                pps=self.plans_per_second,
                pruned=self.pruned_count,
                reasons=", ".join(
                    f"{name}: {count}"
                    for name, count in self.pruned_counts.items()
                )
                or "none",
                feasible=self.feasible_count,
            ),
            f"tier B: replayed {len(self.finalists)} finalists in "
            f"{self.tier_b_seconds:.3f} s",
            "",
            "  #  plan  mix                      batch  replay p99"
            "      billed s      surrogate p99   slo",
        ]
        for rank, row in enumerate(self.finalists, start=1):
            mix = " + ".join(
                f"{count}x{name}"
                for name, count in row["counts"].items()
                if count
            )
            replay = row["replay"]
            surrogate = row["surrogate"]
            p99 = replay["p99_latency_s"]
            p99_text = f"{p99 * 1e6:9.2f} us" if p99 else "        —"
            lines.append(
                f"{rank:>3}  {row['plan']:>4}  {mix:<24} "
                f"{row['max_batch']:>5}  {p99_text}  "
                f"{replay['billed_shard_seconds'] * 1e3:9.3f} ms  "
                f"{surrogate['p99_s'] * 1e6:12.2f} us  "
                f"{'ok' if replay['slo_ok'] else 'MISS'}"
            )
        verdict = "meets" if self.slo_met else "MISSES"
        winner = self.winner
        mix = " + ".join(
            f"{count}x{name}"
            for name, count in winner["counts"].items()
            if count
        )
        auto = self.autoscaler_settings()
        lines += [
            "",
            f"winner: plan {winner['plan']} ({mix}, batch "
            f"{winner['max_batch']}) {verdict} the SLO",
            f"autoscaler: min {auto['min_shards']} / max "
            f"{auto['max_shards']} shards, target p99 "
            f"{auto['target_p99_s'] * 1e3:.3f} ms",
        ]
        return "\n".join(lines)


def plan_capacity(
    model: Union[str, Network],
    devices: Union[str, Sequence[KindSpec]],
    options: PlanOptions,
    cache: Optional[EvaluationCache] = None,
    store: Optional[Union[EvaluationStore, str, Path]] = None,
) -> ProvisioningPlan:
    """Plan a fleet for ``model`` over ``devices`` (spec string or
    :class:`KindSpec` rows) — the two-tier pipeline described in the
    module docstring."""
    network = _load_network(model) if isinstance(model, str) else model
    specs = (
        parse_devices(devices) if isinstance(devices, str) else tuple(devices)
    )
    if not specs:
        raise PlanningError("the device spec names no kinds")
    cache = cache if cache is not None else EvaluationCache()
    if isinstance(store, (str, Path)):
        store = EvaluationStore(store)
    kinds = resolve_kinds(
        network, specs, seed=options.seed, cache=cache, store=store
    )

    batch_options = options.batch_options
    if batch_options is None:
        top = 2 * max(kind.instances for kind in kinds)
        batch_options = tuple(
            sorted(
                {1, top} | {kind.instances for kind in kinds}
            )
        )
    grid = PlanGrid(specs, batch_options)

    requests, workload = _materialise_workload(options)
    profile = ArrivalProfile.from_requests(requests)
    if options.max_wait_s is not None:
        max_wait_s = options.max_wait_s
    else:
        max_wait_s = 2.0 * max(kind.probe_seconds() for kind in kinds)

    # -- Tier A: vectorized surrogate over the whole grid -------------
    scorer = AnalyticPlanScorer(
        service_seconds=[kind.probe_seconds() for kind in kinds],
        instances=[kind.instances for kind in kinds],
        weights=[kind.weight for kind in kinds],
    )
    tier_a_start = time.perf_counter()
    scores = scorer.score(
        grid.counts, grid.batches, profile, options.slo_p99_s,
        max_wait_s=max_wait_s,
    )
    tier_a_seconds = time.perf_counter() - tier_a_start

    kept = [i for i in range(len(grid)) if scores.pruned[i] == 0]
    if not kept:
        raise PlanningError(
            "every plan is provably infeasible for this SLO — raise "
            "the shard ranges, the SLO, or lower the rate "
            f"(grid: {grid.describe()})"
        )
    kept.sort(
        key=lambda i: (
            0 if scores.feasible[i] else 1,
            float(scores.billed_shard_seconds[i]),
            float(scores.p99_s[i]),
            i,
        )
    )
    finalist_indices = kept[: options.top_k]
    pruned_counts = {
        PRUNE_REASONS[code]: int((scores.pruned == code).sum())
        for code in (1, 2)
        if int((scores.pruned == code).sum())
    }
    feasible_count = int(scores.feasible.sum())

    # -- Tier B: exact replay of the finalists ------------------------
    arrivals = tuple(request.arrival for request in requests)
    state = _ReplayState(
        kinds, arrivals, options.policy, max_wait_s,
        options.event_budget, options.slo_p99_s,
    )
    payload = (
        [
            (network, kind.device, kind.cfg, kind.weight, options.seed)
            for kind in kinds
        ],
        arrivals,
        options.policy,
        max_wait_s,
        options.event_budget,
        options.slo_p99_s,
    )
    jobs = [
        ReplayJob(index, *grid.plan(index)) for index in finalist_indices
    ]
    tier_b_start = time.perf_counter()
    replayed = replay_finalists(
        state, payload, jobs, options.executor, options.jobs
    )
    tier_b_seconds = time.perf_counter() - tier_b_start

    finalists = []
    for row in replayed:
        index = row["plan"]
        counts, max_batch = grid.plan(index)
        finalists.append(
            {
                "plan": index,
                "counts": {
                    kind.name: count
                    for kind, count in zip(kinds, counts)
                },
                "max_batch": max_batch,
                "surrogate": {
                    "utilisation": float(scores.utilisation[index]),
                    "queue_wait_p99_s": float(
                        scores.queue_wait_p99_s[index]
                    ),
                    "fill_wait_s": float(scores.fill_wait_s[index]),
                    "p99_s": float(scores.p99_s[index]),
                    "billed_shard_seconds": float(
                        scores.billed_shard_seconds[index]
                    ),
                    "feasible": bool(scores.feasible[index]),
                },
                "replay": row,
            }
        )
    finalists.sort(
        key=lambda item: (
            0 if item["replay"]["slo_ok"] else 1,
            item["replay"]["billed_shard_seconds"],
            item["replay"]["p99_latency_s"]
            if item["replay"]["p99_latency_s"] is not None
            else math.inf,
            item["plan"],
        )
    )

    report = ProvisioningPlan(
        kinds=kinds,
        grid=grid,
        profile=profile,
        workload=workload,
        options=options,
        max_wait_s=max_wait_s,
        pruned_counts=pruned_counts,
        feasible_count=feasible_count,
        finalists=finalists,
        tier_a_seconds=tier_a_seconds,
        tier_b_seconds=tier_b_seconds,
    )
    if store is not None:
        for kind in kinds:
            kind.session.close()
    return report

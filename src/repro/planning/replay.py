"""Tier B of the capacity planner: exact event-kernel plan replay.

The finalists Tier A promotes are *verified*, not re-estimated: each
plan's heterogeneous pool is assembled from per-kind session clones
and the target workload is replayed through the full
:class:`~repro.serving.server.ShardServer` stack (batcher, scheduler,
event kernel) — the same oracle `repro serve` runs.

Parallelism reuses the sweep driver's pinned-payload pattern
(:mod:`repro.serving.sweep`): a picklable payload primes each worker
once with the network, every kind's resolved config and the replay
knobs; workers then verify whichever finalist they pick up.  A
finalist's result depends only on the finalist (the workload is a
fixed, pre-materialised arrival list), results carry no wall-clock
fields, and the parent reassembles them in plan order — so
``executor="process"`` replays byte-identically to serial.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import PlanningError
from repro.serving.batcher import BatcherOptions
from repro.serving.server import ShardServer
from repro.serving.workload import WorkloadSpec
from repro.serving.shard import Shard, ShardPool
from repro.serving.traffic import Request

#: Tier B execution backends (mirrors ``SWEEP_EXECUTORS``).
PLAN_EXECUTORS = ("serial", "process")


@dataclass(frozen=True)
class ReplayJob:
    """One finalist to verify: a grid index, a shard mix, a batch."""

    plan_index: int
    counts: Tuple[int, ...]
    max_batch: int


class _ReplayState:
    """Per-process replay context: per-kind sessions built once,
    shard clones cached and reused across finalists."""

    def __init__(self, kinds, arrivals, policy, max_wait_s,
                 event_budget, slo_p99_s):
        self.kinds = kinds  # resolved DeviceKind sequence
        self.requests = [
            Request(index=index, arrival=arrival)
            for index, arrival in enumerate(arrivals)
        ]
        self.policy = policy
        self.max_wait_s = max_wait_s
        self.event_budget = event_budget
        self.slo_p99_s = slo_p99_s
        #: kind index -> shards deployed so far (lazily extended; a
        #: plan needing n shards of a kind reuses the first n).
        self._shards: Dict[int, List[Shard]] = {}

    @classmethod
    def from_payload(cls, payload) -> "_ReplayState":
        from repro.planning.planner import DeviceKind

        (kind_specs, arrivals, policy, max_wait_s, event_budget,
         slo_p99_s) = payload
        kinds = [
            DeviceKind.build(network, device, cfg, weight, seed)
            for network, device, cfg, weight, seed in kind_specs
        ]
        return cls(kinds, arrivals, policy, max_wait_s, event_budget,
                   slo_p99_s)

    def _kind_shards(self, kind_index: int, count: int) -> List[Shard]:
        shards = self._shards.setdefault(kind_index, [])
        kind = self.kinds[kind_index]
        while len(shards) < count:
            index = len(shards)
            session = (
                kind.session if index == 0 else kind.session.clone()
            )
            shards.append(
                Shard(
                    session,
                    name=f"{kind.name}{index}",
                    probe_of=shards[0] if index else None,
                )
            )
        return shards[:count]

    def pool(self, counts: Sequence[int]) -> ShardPool:
        shards: List[Shard] = []
        for kind_index, count in enumerate(counts):
            if count:
                shards.extend(self._kind_shards(kind_index, count))
        if not shards:
            raise PlanningError("replaying an empty plan")
        return ShardPool(shards)

    def run(self, job: ReplayJob) -> dict:
        """One exact, deterministic replay — no wall-clock fields, so
        serial and process runs serialise identically."""
        pool = self.pool(job.counts)
        pool.reset()
        server = ShardServer(pool)
        # Tier B finalists are plain open-loop replays — exactly the
        # fast-forward engine's home turf, so engine="auto" selects it
        # and the row records which engine verified the plan.
        report = server.run(WorkloadSpec(
            traffic=list(self.requests),
            policy=self.policy,
            batcher=BatcherOptions(
                max_batch=job.max_batch, max_wait_s=self.max_wait_s
            ),
            max_events=self.event_budget,
        ))
        p99 = report.latency_percentile(99)
        weight = sum(
            count * self.kinds[kind_index].weight
            for kind_index, count in enumerate(job.counts)
        )
        return {
            "plan": job.plan_index,
            "served": report.count,
            "p99_latency_s": None if p99 != p99 else p99,
            "mean_batch_size": report.mean_batch_size,
            "makespan_seconds": report.makespan_seconds,
            "shard_seconds": report.total_shard_seconds(),
            "billed_shard_seconds": weight * report.makespan_seconds,
            "events_processed": report.events_processed,
            "engine": server.last_engine,
            "slo_ok": bool(
                report.count == len(self.requests)
                and p99 == p99
                and p99 <= self.slo_p99_s
            ),
        }


#: Worker-side state, installed once per process by the pool
#: initializer (the ``repro.serving.sweep`` pattern).
_replay_state: dict = {}


def _replay_worker_init(payload) -> None:
    _replay_state["state"] = _ReplayState.from_payload(payload)


def _replay_run_job(job: ReplayJob) -> dict:
    return _replay_state["state"].run(job)


def replay_finalists(
    state: _ReplayState,
    payload,
    jobs: List[ReplayJob],
    executor: str,
    workers: int,
) -> List[dict]:
    """Verify ``jobs`` serially or across worker processes.

    ``state`` drives the serial path (and is the template the payload
    was derived from); the process path primes fresh workers from
    ``payload``.  Either way the result list is sorted by plan index —
    the byte-identity invariant.
    """
    if executor not in PLAN_EXECUTORS:
        raise PlanningError(
            f"unknown plan executor {executor!r}; "
            f"expected one of {PLAN_EXECUTORS}"
        )
    if executor == "process" and workers > 1 and len(jobs) > 1:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(jobs)),
            initializer=_replay_worker_init,
            initargs=(payload,),
        ) as pool:
            futures = [
                pool.submit(_replay_run_job, job) for job in jobs
            ]
            results = [future.result() for future in futures]
    else:
        results = [state.run(job) for job in jobs]
    results.sort(key=lambda row: row["plan"])
    return results

"""Tier A of the capacity planner: vectorized analytic plan scoring.

A *plan* is ``(shard counts per device kind, pool-wide max_batch)``.
The scorer turns the whole plan grid into numpy column math built on
per-``(kind, batch)`` service-time tables: ``ceil(batch / NI_k) *
t_k`` seconds per dispatched batch, where ``t_k`` is the kind's
per-image service time (the Eq. 12-15 analytical latency, calibrated
to simulated time by one timing probe per kind — the same
analytical-vs-probe distinction as
:meth:`~repro.serving.shard.ShardPool.capacity_images_per_second` vs
:meth:`~repro.serving.shard.ShardPool.simulated_images_per_second`).

Two kinds of output per plan:

* **admissible feasibility bounds** — prune reasons that are *proofs*
  of replay infeasibility, never heuristics (``docs/planning.md``
  carries the argument; ``tests/test_planning_properties.py`` attacks
  it with randomized grids):

  - *service floor*: every served request spends at least one service
    round ``t_k`` on its shard, so ``min over used kinds of t_k``
    lower-bounds every latency — above the SLO, the plan cannot
    possibly meet it;
  - *capacity backlog*: a shard completes at most ``NI_k / t_k``
    images per second, so the ``j``-th completion happens no earlier
    than ``j / mu`` with ``mu`` the aggregate cap.  With ``N``
    requests, the nearest-rank p99 is the ``r = ceil(0.99 N)``-th
    order statistic, and the ``N - r + 1`` last-completing requests
    all have latency ``>= r / mu - A_max`` (``A_max`` = last arrival).
    Above the SLO, the *replayed* p99 is too — whatever the batcher,
    policy or batch mix does.

* **a ranking surrogate** — utilisation against the batch-aware
  effective capacity, an M/D/c-style waiting-time estimate (Erlang-C
  with deterministic-service halving), batch-fill latency, a projected
  p99 and billed shard-seconds.  The surrogate only *orders* plans for
  Tier B replay; it proves nothing, which is why the final report
  prints it next to the replayed numbers so its error stays visible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import PlanningError

#: Prune reasons, indexable by the codes in :attr:`PlanScores.pruned`.
#: Code 0 means "not pruned".
PRUNE_REASONS = ("", "service-floor", "capacity-backlog")

#: Tail quantile the planner projects and verifies (nearest-rank p99).
TAIL_QUANTILE = 0.99


@dataclass(frozen=True)
class ArrivalProfile:
    """The workload summary Tier A scores against.

    ``count`` requests at mean ``rate`` images/s, the last arriving
    ``last_arrival_s`` after the first.  Built from the *materialised*
    request list (synthetic or trace replay), so the capacity bound
    sees the actual ``A_max``, not a model of it.
    """

    count: int
    rate: float
    last_arrival_s: float

    def __post_init__(self) -> None:
        if self.count < 1:
            raise PlanningError(
                f"arrival profile needs >= 1 request, got {self.count}"
            )
        if self.last_arrival_s < 0 or not math.isfinite(
            self.last_arrival_s
        ):
            raise PlanningError(
                f"last arrival must be finite and >= 0, "
                f"got {self.last_arrival_s}"
            )
        if self.rate <= 0:
            raise PlanningError(
                f"arrival rate must be positive, got {self.rate}"
            )

    @classmethod
    def from_requests(cls, requests) -> "ArrivalProfile":
        """Profile of a materialised request list (sorted or not)."""
        if not requests:
            raise PlanningError("arrival profile of an empty workload")
        arrivals = [request.arrival for request in requests]
        first, last = min(arrivals), max(arrivals)
        span = last - first
        count = len(arrivals)
        # Simultaneous arrivals (the "uniform" model) have no finite
        # mean rate; use an effectively-infinite one so utilisation
        # saturates and only the admissible bounds decide anything.
        rate = (count - 1) / span if span > 0 and count > 1 else math.inf
        return cls(count=count, rate=rate, last_arrival_s=span)


@dataclass(frozen=True)
class PlanScores:
    """Per-plan columns of one :meth:`AnalyticPlanScorer.score` call.

    Arrays are aligned with the scored ``counts`` rows.  ``pruned``
    holds :data:`PRUNE_REASONS` codes (0 = kept); pruned plans carry
    NaN surrogate columns — there is nothing meaningful to rank.
    """

    capacity_img_s: np.ndarray  # admissible aggregate cap (NI_k/t_k)
    effective_img_s: np.ndarray  # batch-aware achievable rate
    utilisation: np.ndarray  # offered load / effective capacity
    queue_wait_p99_s: np.ndarray  # M/D/c-style waiting-tail surrogate
    fill_wait_s: np.ndarray  # batch-fill latency at the arrival rate
    service_p99_s: np.ndarray  # worst-kind full-batch service time
    p99_s: np.ndarray  # projected p99 (queue + fill + service)
    billed_weight: np.ndarray  # sum of counts x kind cost weights
    billed_shard_seconds: np.ndarray  # weight x projected makespan
    makespan_s: np.ndarray  # projected run span
    pruned: np.ndarray  # int codes into PRUNE_REASONS
    feasible: np.ndarray  # surrogate verdict: p99_s <= SLO, kept

    def __len__(self) -> int:
        return len(self.pruned)


class AnalyticPlanScorer:
    """Vectorized scorer over one set of device kinds.

    ``service_seconds[k]`` is kind *k*'s per-image service time in
    simulated seconds, ``instances[k]`` its batch-parallel instance
    count, ``weights[k]`` its billing weight (shard-seconds of kind
    *k* bill ``weights[k]`` per second — the natural default is the
    instance count, so a 6-instance VU9P shard costs six times a
    1-instance PYNQ shard).
    """

    def __init__(
        self,
        service_seconds: Sequence[float],
        instances: Sequence[int],
        weights: Optional[Sequence[float]] = None,
    ):
        self.service_seconds = np.asarray(service_seconds, dtype=float)
        self.instances = np.asarray(instances, dtype=float)
        if self.service_seconds.ndim != 1 or self.service_seconds.size == 0:
            raise PlanningError("scorer needs >= 1 device kind")
        if self.instances.shape != self.service_seconds.shape:
            raise PlanningError(
                f"{self.instances.size} instance counts for "
                f"{self.service_seconds.size} service times"
            )
        if not np.all(np.isfinite(self.service_seconds)) or np.any(
            self.service_seconds <= 0
        ):
            raise PlanningError("service times must be positive and finite")
        if np.any(self.instances < 1):
            raise PlanningError("instance counts must be >= 1")
        if weights is None:
            weights = self.instances
        self.weights = np.asarray(weights, dtype=float)
        if self.weights.shape != self.service_seconds.shape or np.any(
            self.weights <= 0
        ):
            raise PlanningError(
                "billing weights must be positive, one per kind"
            )

    @property
    def kinds(self) -> int:
        return self.service_seconds.size

    def batch_service_seconds(self, batches: np.ndarray) -> np.ndarray:
        """The per-``(plan, kind)`` service-time table: what one
        dispatched batch of the plan's ``max_batch`` costs on each
        kind (``ceil(batch / NI_k) * t_k``)."""
        rounds = np.ceil(
            batches[:, None] / self.instances[None, :]
        )
        return rounds * self.service_seconds[None, :]

    def score(
        self,
        counts: np.ndarray,
        batches: np.ndarray,
        profile: ArrivalProfile,
        slo_p99_s: float,
        max_wait_s: float = 0.0,
    ) -> PlanScores:
        """Score every ``(counts row, batch)`` plan as column ops.

        ``counts`` is ``(plans, kinds)`` shard counts, ``batches`` the
        matching pool-wide batcher budget per plan.  Plans must field
        at least one shard (the grid never emits the empty plan).
        """
        counts = np.asarray(counts, dtype=float)
        batches = np.asarray(batches, dtype=float)
        if counts.ndim != 2 or counts.shape[1] != self.kinds:
            raise PlanningError(
                f"counts must be (plans, {self.kinds}), "
                f"got {counts.shape}"
            )
        if batches.shape != (counts.shape[0],):
            raise PlanningError(
                f"{batches.shape} batch column for "
                f"{counts.shape[0]} plans"
            )
        if np.any(counts < 0) or np.any(batches < 1):
            raise PlanningError(
                "shard counts must be >= 0 and batches >= 1"
            )
        if np.any(counts.sum(axis=1) == 0):
            raise PlanningError("a plan fields zero shards")
        if slo_p99_s <= 0 or not math.isfinite(slo_p99_s):
            raise PlanningError(
                f"SLO target must be positive and finite, "
                f"got {slo_p99_s}"
            )
        if max_wait_s < 0:
            raise PlanningError(
                f"max_wait_s must be >= 0, got {max_wait_s}"
            )

        used = counts > 0
        rate = profile.rate

        # -- admissible bounds (prune codes 1 and 2) ------------------
        # Service floor: every request pays at least one service round
        # on whichever shard serves it.
        floor = np.where(
            used, self.service_seconds[None, :], np.inf
        ).min(axis=1)
        # Capacity backlog: mu is an upper bound on the pool's
        # completion rate, whatever the batch mix.
        capacity = counts @ (self.instances / self.service_seconds)
        tail_rank = math.ceil(TAIL_QUANTILE * profile.count)
        backlog_p99 = tail_rank / capacity - profile.last_arrival_s
        pruned = np.zeros(len(counts), dtype=int)
        pruned[backlog_p99 > slo_p99_s] = 2
        pruned[floor > slo_p99_s] = 1  # the simpler proof wins ties

        # -- ranking surrogate (never prunes) -------------------------
        # Batch-aware effective capacity: a shard dispatching batches
        # of B serves B images per ceil(B/NI) rounds, which is below
        # the NI/t cap whenever B is not a multiple of NI.
        table = self.batch_service_seconds(batches)  # (plans, kinds)
        per_shard_rate = batches[:, None] / table
        effective = (counts * per_shard_rate).sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            utilisation = np.where(
                effective > 0, rate / effective, np.inf
            )
        servers = (counts * self.instances[None, :]).sum(axis=1)
        queue_wait = _mdc_wait_p99(
            servers, utilisation, effective, rate
        )
        if math.isfinite(rate):
            fill = np.minimum(max_wait_s, (batches - 1.0) / rate)
        else:
            fill = np.zeros_like(batches)
        service_p99 = np.where(used, table, -np.inf).max(axis=1)
        p99 = queue_wait + fill + service_p99
        makespan = profile.last_arrival_s + p99
        weight = counts @ self.weights
        billed = weight * makespan
        feasible = (pruned == 0) & (p99 <= slo_p99_s)

        keep = pruned == 0
        nan = np.where(keep, 1.0, np.nan)
        return PlanScores(
            capacity_img_s=capacity,
            effective_img_s=effective,
            utilisation=utilisation * nan,
            queue_wait_p99_s=queue_wait * nan,
            fill_wait_s=fill * nan,
            service_p99_s=service_p99 * nan,
            p99_s=p99 * nan,
            billed_weight=weight,
            billed_shard_seconds=billed * nan,
            makespan_s=makespan * nan,
            pruned=pruned,
            feasible=feasible,
        )


def _mdc_wait_p99(
    servers: np.ndarray,
    utilisation: np.ndarray,
    effective: np.ndarray,
    rate: float,
) -> np.ndarray:
    """M/D/c-style p99 waiting-time surrogate, vectorized over plans.

    Erlang-C delay probability via the Erlang-B recurrence (iterated
    to the largest server count, masked per plan), an exponential
    waiting tail ``P(W > t) = C exp(-(mu - lambda) t)`` solved for the
    99th percentile, and the classic deterministic-service halving of
    the M/M/c wait.  Saturated plans (utilisation >= 1) get an
    infinite wait — the surrogate cannot rank them feasible, though
    only the *admissible* bounds may prune.
    """
    servers = np.maximum(servers, 1.0)
    rho = np.clip(utilisation, 0.0, None)
    stable = (rho < 1.0) & np.isfinite(rho)
    offered = servers * rho
    # Erlang-B recurrence B_k = a B_{k-1} / (k + a B_{k-1}), stopping
    # at each plan's own server count.
    blocking = np.ones_like(offered)
    top = int(servers.max()) if servers.size else 0
    for k in range(1, top + 1):
        grow = servers >= k
        updated = (offered * blocking) / (k + offered * blocking)
        blocking = np.where(grow, updated, blocking)
    with np.errstate(divide="ignore", invalid="ignore"):
        delay_p = np.where(
            stable,
            blocking / (1.0 - rho * (1.0 - blocking)),
            1.0,
        )
        drain = effective - rate  # (mu - lambda), images/s
        tail = np.log(np.maximum(delay_p, 1e-300) / 0.01)
        wait = np.where(
            stable & (drain > 0),
            0.5 * np.maximum(tail, 0.0) / np.maximum(drain, 1e-300),
            np.inf,
        )
    return wait

"""Plan enumeration: device-kind specs and the plan grid.

A ``--devices`` spec names the fleet's building blocks::

    vu9p:0..4+pynq-z1:0..8          two kinds, shard count ranges
    vu9p:2                          a fixed count (2..2)
    vu9p:0..4@6+pynq-z1:0..8@1      explicit billing weights

Device names resolve against the FPGA catalog; an unambiguous prefix
(``pynq`` for ``pynq-z1``) is accepted.  The optional ``@weight``
overrides the billing weight (default: the resolved config's instance
count, so shard-seconds bill as instance-seconds).

:class:`PlanGrid` is the cross product of every kind's count range and
the pool-wide ``max_batch`` choices, minus the empty plan — exactly
the ``(cfg, per-shard max_batch, shard mix)`` space ROADMAP item 1
asks the planner to search.  The grid materialises as numpy arrays so
Tier A scores all plans in one vectorized call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import PlanningError
from repro.fpga import DEVICES

#: Keep accidental mega-grids out of Tier A: the scorer is fast, but a
#: spec like ``vu9p:0..999+...`` is almost certainly a typo.
MAX_PLANS = 1_000_000


@dataclass(frozen=True)
class KindSpec:
    """One device kind of the fleet: a catalog name, a shard count
    range, and an optional billing-weight override."""

    device: str
    min_shards: int
    max_shards: int
    weight: Optional[float] = None

    def __post_init__(self) -> None:
        if self.min_shards < 0:
            raise PlanningError(
                f"{self.device}: min shards must be >= 0, "
                f"got {self.min_shards}"
            )
        if self.max_shards < max(self.min_shards, 1):
            raise PlanningError(
                f"{self.device}: max shards must be >= "
                f"max(min, 1), got {self.min_shards}..{self.max_shards}"
            )
        if self.weight is not None and self.weight <= 0:
            raise PlanningError(
                f"{self.device}: billing weight must be positive, "
                f"got {self.weight}"
            )

    def counts(self) -> List[int]:
        return list(range(self.min_shards, self.max_shards + 1))


def _resolve_device_name(name: str) -> str:
    if name in DEVICES:
        return name
    matches = sorted(d for d in DEVICES if d.startswith(name))
    if len(matches) == 1:
        return matches[0]
    if matches:
        raise PlanningError(
            f"device {name!r} is ambiguous: {matches}"
        )
    raise PlanningError(
        f"unknown device {name!r}; expected one of {sorted(DEVICES)}"
    )


def parse_devices(spec: str) -> Tuple[KindSpec, ...]:
    """Parse a ``--devices`` fleet spec (grammar in the module doc)."""
    kinds: List[KindSpec] = []
    for part in spec.split("+"):
        part = part.strip()
        if not part:
            continue
        name, sep, tail = part.partition(":")
        if not sep or not name:
            raise PlanningError(
                f"device spec {part!r}: expected "
                "<device>:<min..max>[@weight]"
            )
        counts, _, weight_text = tail.partition("@")
        lo_text, sep, hi_text = counts.partition("..")
        try:
            lo = int(lo_text)
            hi = int(hi_text) if sep else lo
        except ValueError:
            raise PlanningError(
                f"device spec {part!r}: bad shard count range "
                f"{counts!r}"
            ) from None
        weight = None
        if weight_text:
            try:
                weight = float(weight_text)
            except ValueError:
                raise PlanningError(
                    f"device spec {part!r}: bad billing weight "
                    f"{weight_text!r}"
                ) from None
        kinds.append(
            KindSpec(
                device=_resolve_device_name(name.strip()),
                min_shards=lo,
                max_shards=hi,
                weight=weight,
            )
        )
    if not kinds:
        raise PlanningError(f"device spec {spec!r} names no kinds")
    names = [kind.device for kind in kinds]
    if len(set(names)) != len(names):
        raise PlanningError(
            f"device spec {spec!r} repeats a kind: {names}"
        )
    return tuple(kinds)


class PlanGrid:
    """The enumerated plan space, materialised as numpy columns.

    ``counts[p, k]`` is plan *p*'s shard count of kind *k*;
    ``batches[p]`` its pool-wide batcher budget.  The all-zero mix is
    excluded (a fleet of nothing serves nothing), so every row is a
    deployable plan.  Enumeration order is deterministic: shard mixes
    odometer-style (first kind slowest), batch options innermost —
    ties everywhere downstream break on this index, which is what
    makes serial and process Tier B runs byte-identical.
    """

    def __init__(
        self,
        kinds: Sequence[KindSpec],
        batch_options: Sequence[int],
    ):
        if not kinds:
            raise PlanningError("a plan grid needs >= 1 device kind")
        batches = sorted(set(int(b) for b in batch_options))
        if not batches:
            raise PlanningError("a plan grid needs >= 1 batch option")
        if batches[0] < 1:
            raise PlanningError(
                f"batch options must be >= 1, got {batches[0]}"
            )
        self.kinds = tuple(kinds)
        self.batch_options = tuple(batches)
        per_kind = [kind.counts() for kind in kinds]
        mixes = 1
        for counts in per_kind:
            mixes *= len(counts)
        total = mixes * len(batches)
        if total > MAX_PLANS:
            raise PlanningError(
                f"plan grid would hold {total} plans "
                f"(> {MAX_PLANS}); narrow the device spec"
            )
        columns = np.meshgrid(*per_kind, indexing="ij")
        mix_rows = np.stack(
            [column.reshape(-1) for column in columns], axis=1
        )
        mix_rows = mix_rows[mix_rows.sum(axis=1) > 0]
        if mix_rows.size == 0:
            raise PlanningError(
                "the plan grid holds only the empty plan; raise a "
                "kind's max shard count"
            )
        self.counts = np.repeat(
            mix_rows, len(batches), axis=0
        ).astype(int)
        self.batches = np.tile(
            np.asarray(batches, dtype=int), len(mix_rows)
        )

    def __len__(self) -> int:
        return len(self.batches)

    def plan(self, index: int) -> Tuple[Tuple[int, ...], int]:
        """Plan ``index`` as ``(shard counts per kind, max_batch)``."""
        return (
            tuple(int(c) for c in self.counts[index]),
            int(self.batches[index]),
        )

    def describe(self) -> str:
        ranges = " + ".join(
            f"{kind.device}:{kind.min_shards}..{kind.max_shards}"
            for kind in self.kinds
        )
        return (
            f"{len(self)} plans ({ranges}; batch in "
            f"{list(self.batch_options)})"
        )

"""Fleet capacity planning: vectorized analytic scoring (Tier A) with
event-kernel replay verification of the finalists (Tier B).

See ``docs/planning.md`` for the surrogate math and the admissibility
argument behind the pruning bounds.
"""

from repro.planning.grid import (
    KindSpec,
    MAX_PLANS,
    PlanGrid,
    parse_devices,
)
from repro.planning.planner import (
    DeviceKind,
    PlanOptions,
    ProvisioningPlan,
    plan_capacity,
    resolve_kinds,
)
from repro.planning.replay import PLAN_EXECUTORS, ReplayJob, replay_finalists
from repro.planning.scorer import (
    AnalyticPlanScorer,
    ArrivalProfile,
    PRUNE_REASONS,
    PlanScores,
    TAIL_QUANTILE,
)

__all__ = [
    "AnalyticPlanScorer",
    "ArrivalProfile",
    "DeviceKind",
    "KindSpec",
    "MAX_PLANS",
    "PLAN_EXECUTORS",
    "PRUNE_REASONS",
    "PlanGrid",
    "PlanOptions",
    "PlanScores",
    "ProvisioningPlan",
    "ReplayJob",
    "TAIL_QUANTILE",
    "parse_devices",
    "plan_capacity",
    "replay_finalists",
    "resolve_kinds",
]

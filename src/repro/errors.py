"""Exception hierarchy for the HybridDNN reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch framework failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ShapeError(ReproError):
    """A tensor shape is inconsistent with the operation applied to it."""


class GraphError(ReproError):
    """A network graph is malformed (dangling edge, cycle, bad wiring)."""


class UnsupportedLayerError(ReproError):
    """The accelerator / compiler cannot map this layer type."""


class DeviceError(ReproError):
    """Unknown FPGA device or inconsistent device specification."""


class ResourceError(ReproError):
    """A configuration exceeds the resource budget of the target device."""


class EncodingError(ReproError):
    """An instruction field is out of range or a word fails to decode."""


class CompileError(ReproError):
    """The compiler cannot produce a valid instruction stream."""


class SimulationError(ReproError):
    """The simulator detected an inconsistency (hazard, bad token, ...)."""


class DseError(ReproError):
    """Design space exploration failed (empty space, bad constraints)."""


class RuntimeHostError(ReproError):
    """The host runtime was used incorrectly (missing program/data)."""


class ServingError(ReproError):
    """The serving layer was misconfigured (bad policy, empty pool, ...)."""


class PlanningError(ReproError):
    """The capacity planner was misconfigured (bad device spec, empty
    plan grid, unsatisfiable workload, ...)."""

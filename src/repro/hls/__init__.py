"""HLS code emission (framework Step 3, hardware side).

The paper's Step 3 transforms the finalized HLS template configuration
into synthesizable C-level descriptions.  With no synthesis tool in this
environment, emission itself is the deliverable: a configuration header
(the DSE's parameters as compile-time constants), a synthesizable-style
C++ top function implementing the four-module architecture, and a build
script — everything a user would hand to Vivado/Vitis HLS.

Public API
----------
``HlsConfig`` / ``from_dse``
    The template configuration record.
``emit_project``
    Write header + top + script into a directory.
"""

from repro.hls.config import HlsConfig
from repro.hls.emitter import emit_config_header, emit_project, emit_top

__all__ = [
    "HlsConfig",
    "emit_config_header",
    "emit_project",
    "emit_top",
]

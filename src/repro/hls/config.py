"""HLS template configuration.

Carries exactly the quantities the C++ templates are parameterised on:
parallel factors, data widths, buffer depths and the target part/clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.params import AcceleratorConfig
from repro.fpga.device import FpgaDevice


@dataclass(frozen=True)
class HlsConfig:
    """Compile-time constants of the generated accelerator."""

    project: str
    part: str
    clock_ns: float
    pi: int
    po: int
    pt: int
    m: int
    data_width: int
    weight_width: int
    accum_width: int
    input_buffer_vecs: int
    weight_buffer_vecs: int
    output_buffer_vecs: int
    instances: int

    @classmethod
    def from_config(
        cls, cfg: AcceleratorConfig, device: FpgaDevice, project: str
    ) -> "HlsConfig":
        return cls(
            project=project,
            part=device.part,
            clock_ns=1e3 / cfg.frequency_mhz,
            pi=cfg.pi,
            po=cfg.po,
            pt=cfg.pt,
            m=cfg.m,
            data_width=cfg.data_width,
            weight_width=cfg.weight_width,
            accum_width=32,
            input_buffer_vecs=cfg.input_buffer_vecs,
            weight_buffer_vecs=cfg.weight_buffer_vecs,
            output_buffer_vecs=cfg.output_buffer_vecs,
            instances=cfg.instances,
        )

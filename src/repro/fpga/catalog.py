"""Catalog of FPGA platforms.

The two paper platforms are entered with their exact Table-3 totals
(Table 3 reports utilisation percentages; dividing the absolute counts by
the percentages recovers the device totals, which match the Xilinx data
sheets):

* ``vu9p``   — Semptian NSA.241 with a Xilinx Virtex UltraScale+ VU9P,
  three super-logic regions, PCIe-attached DDR4.
* ``pynq-z1`` — Xilinx Zynq-7020 SoC board, PS-attached DDR3.

Frequencies are the operating clocks of the paper's generated designs
(Table 4: 167 MHz / 100 MHz).  Bandwidths are sustained figures for the
boards' memory systems; they are the calibration knob for the
memory-bound behaviour in Figure 6.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import DeviceError
from repro.fpga.device import ExternalMemory, FpgaDevice
from repro.fpga.resources import ResourceBudget

DEVICES: Dict[str, FpgaDevice] = {}


def _register(device: FpgaDevice) -> FpgaDevice:
    if device.name in DEVICES:
        raise DeviceError(f"duplicate device {device.name!r}")
    DEVICES[device.name] = device
    return device


VU9P = _register(
    FpgaDevice(
        name="vu9p",
        part="Xilinx Virtex UltraScale+ XCVU9P (Semptian NSA.241)",
        resources=ResourceBudget(luts=1_182_240, dsps=6_840, brams=4_320),
        dies=3,
        frequency_mhz=167.0,
        memory=ExternalMemory(bandwidth_gbps=76.8, channels=4),
        bram_width_bits=18,
        typical_power_w=45.9,
        embedded=False,
    )
)

PYNQ_Z1 = _register(
    FpgaDevice(
        name="pynq-z1",
        part="Xilinx Zynq-7020 (PYNQ-Z1)",
        resources=ResourceBudget(luts=53_200, dsps=220, brams=280),
        dies=1,
        frequency_mhz=100.0,
        memory=ExternalMemory(bandwidth_gbps=3.2, channels=1),
        bram_width_bits=18,
        typical_power_w=2.6,
        embedded=True,
    )
)

ZCU102 = _register(
    FpgaDevice(
        name="zcu102",
        part="Xilinx Zynq UltraScale+ XCZU9EG (ZCU102)",
        resources=ResourceBudget(luts=274_080, dsps=2_520, brams=1_824),
        dies=1,
        frequency_mhz=200.0,
        memory=ExternalMemory(bandwidth_gbps=19.2, channels=1),
        bram_width_bits=18,
        typical_power_w=20.0,
        embedded=True,
    )
)

KU115 = _register(
    FpgaDevice(
        name="ku115",
        part="Xilinx Kintex UltraScale XCKU115",
        resources=ResourceBudget(luts=663_360, dsps=5_520, brams=4_320),
        dies=2,
        frequency_mhz=200.0,
        memory=ExternalMemory(bandwidth_gbps=38.4, channels=2),
        bram_width_bits=18,
        typical_power_w=35.0,
        embedded=False,
    )
)


def get_device(name: str) -> FpgaDevice:
    """Look up a device by catalog name (case-insensitive)."""
    key = name.lower()
    if key not in DEVICES:
        raise DeviceError(
            f"unknown device {name!r}; available: {sorted(DEVICES)}"
        )
    return DEVICES[key]

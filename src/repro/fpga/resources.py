"""FPGA resource budgets.

A :class:`ResourceBudget` is a triple (LUTs, DSPs, 18Kb-BRAMs) supporting
element-wise arithmetic, scaling and the ``fits_in`` comparison used by
the DSE resource constraints (Table 2 of the paper:
``N_LUT < LUT, N_DSP < DSP, N_BRAM < BRAM``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ResourceError


@dataclass(frozen=True)
class ResourceBudget:
    """LUT / DSP / 18Kb-BRAM counts.

    Used both for device capacity and for estimated utilisation, so
    negative values are rejected but zero is fine.
    """

    luts: int
    dsps: int
    brams: int

    def __post_init__(self) -> None:
        for name in ("luts", "dsps", "brams"):
            value = getattr(self, name)
            if value < 0:
                raise ResourceError(f"negative resource {name}: {value}")

    # -- arithmetic -----------------------------------------------------

    def __add__(self, other: "ResourceBudget") -> "ResourceBudget":
        return ResourceBudget(
            self.luts + other.luts,
            self.dsps + other.dsps,
            self.brams + other.brams,
        )

    def __sub__(self, other: "ResourceBudget") -> "ResourceBudget":
        return ResourceBudget(
            self.luts - other.luts,
            self.dsps - other.dsps,
            self.brams - other.brams,
        )

    def __mul__(self, factor: int) -> "ResourceBudget":
        if factor < 0:
            raise ResourceError(f"negative scale factor: {factor}")
        return ResourceBudget(
            self.luts * factor, self.dsps * factor, self.brams * factor
        )

    __rmul__ = __mul__

    # -- comparisons ------------------------------------------------------

    def fits_in(self, capacity: "ResourceBudget") -> bool:
        """True if this utilisation satisfies the Table-2 constraints."""
        return (
            self.luts <= capacity.luts
            and self.dsps <= capacity.dsps
            and self.brams <= capacity.brams
        )

    def utilisation(self, capacity: "ResourceBudget") -> dict:
        """Fractional utilisation against ``capacity`` per resource kind."""
        return {
            "luts": self.luts / capacity.luts if capacity.luts else 0.0,
            "dsps": self.dsps / capacity.dsps if capacity.dsps else 0.0,
            "brams": self.brams / capacity.brams if capacity.brams else 0.0,
        }

    def max_utilisation(self, capacity: "ResourceBudget") -> float:
        """The binding (largest) utilisation fraction."""
        return max(self.utilisation(capacity).values())

    def __str__(self) -> str:
        return f"{self.luts} LUTs, {self.dsps} DSPs, {self.brams} BRAM18s"

"""FPGA device specifications (framework Step 1, hardware side).

Public API
----------
``ResourceBudget``
    LUT / DSP / BRAM counts with arithmetic and comparison helpers.
``FpgaDevice``
    Full device specification: resources, dies, frequency, external
    memory bandwidth, BRAM word width.
``get_device`` / ``DEVICES``
    Catalog of the devices used in the paper plus a few extras.
"""

from repro.fpga.resources import ResourceBudget
from repro.fpga.device import ExternalMemory, FpgaDevice
from repro.fpga.catalog import DEVICES, get_device

__all__ = [
    "DEVICES",
    "ExternalMemory",
    "FpgaDevice",
    "ResourceBudget",
    "get_device",
]

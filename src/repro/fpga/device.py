"""FPGA device model.

A device bundles the quantities the DSE and the latency model consume:
resource capacity, die count (cloud FPGAs, Section 1), achievable clock
frequency, and external-memory bandwidth.  Bandwidth is expressed in
*elements per second* by :meth:`FpgaDevice.bandwidth_elems`, matching the
units of Eq. 8-11 where ``BW`` is compared against
``FREQ * PI * PO * PT`` element consumption rates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceError
from repro.fpga.resources import ResourceBudget


@dataclass(frozen=True)
class ExternalMemory:
    """External (off-chip) memory attached to the accelerator.

    Parameters
    ----------
    bandwidth_gbps:
        Sustained bandwidth in gigabytes per second, aggregated over all
        channels usable by the accelerator instances.
    channels:
        Number of independent channels (informational; contention is
        modelled as equal sharing of the aggregate bandwidth).
    """

    bandwidth_gbps: float
    channels: int = 1

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise DeviceError("memory bandwidth must be positive")
        if self.channels <= 0:
            raise DeviceError("memory channel count must be positive")

    @property
    def bandwidth_bytes(self) -> float:
        """Bandwidth in bytes per second."""
        return self.bandwidth_gbps * 1e9


@dataclass(frozen=True)
class FpgaDevice:
    """Specification of one FPGA platform.

    Attributes
    ----------
    name:
        Catalog key (e.g. ``"vu9p"``).
    part:
        Vendor part / board description, for reports.
    resources:
        Total LUT / DSP / BRAM18 capacity.
    dies:
        Number of super-logic regions; accelerator instances must not
        straddle dies (Section 6.1: two instances fit per VU9P die).
    frequency_mhz:
        Target clock of generated accelerators on this device.
    memory:
        External memory model.
    bram_width_bits:
        Data width of one BRAM18 instance (``BRAM_WIDTH`` in Eq. 4).
    typical_power_w:
        Board power used for energy-efficiency reporting (Table 4).
    embedded:
        True for SoC-style devices (PYNQ) where the host is on-chip.
    """

    name: str
    part: str
    resources: ResourceBudget
    dies: int
    frequency_mhz: float
    memory: ExternalMemory
    bram_width_bits: int = 18
    typical_power_w: float = 0.0
    embedded: bool = False

    def __post_init__(self) -> None:
        if self.dies <= 0:
            raise DeviceError(f"{self.name}: dies must be positive")
        if self.frequency_mhz <= 0:
            raise DeviceError(f"{self.name}: frequency must be positive")
        if self.bram_width_bits <= 0:
            raise DeviceError(f"{self.name}: BRAM width must be positive")

    @property
    def frequency_hz(self) -> float:
        return self.frequency_mhz * 1e6

    def bandwidth_elems(self, data_width_bits: int, instances: int = 1) -> float:
        """External bandwidth in data elements per second *per instance*.

        ``instances`` accelerator instances share the aggregate bandwidth
        equally — the contention model used for multi-die cloud designs.
        """
        if data_width_bits <= 0:
            raise DeviceError("data width must be positive")
        if instances <= 0:
            raise DeviceError("instance count must be positive")
        bytes_per_elem = max(1, (data_width_bits + 7) // 8)
        return self.memory.bandwidth_bytes / bytes_per_elem / instances

    def resources_per_die(self) -> ResourceBudget:
        """Capacity of one die, assuming symmetric dies."""
        return ResourceBudget(
            self.resources.luts // self.dies,
            self.resources.dsps // self.dies,
            self.resources.brams // self.dies,
        )

    def __str__(self) -> str:
        return (
            f"{self.name} ({self.part}): {self.resources}, {self.dies} die(s), "
            f"{self.frequency_mhz:.0f} MHz, "
            f"{self.memory.bandwidth_gbps:.1f} GB/s"
        )

"""Plain-text table rendering for experiment reports.

Every benchmark prints the same rows the paper's tables/figures report;
this module keeps the formatting in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass
class Table:
    """A titled table with aligned columns."""

    title: str
    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has "
                f"{len(self.headers)} columns"
            )
        self.rows.append([_fmt(c) for c in cells])

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        return format_table(
            self.title, self.headers, self.rows, self.notes
        )

    def __str__(self) -> str:
        return self.render()


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.1f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    notes: Optional[Sequence[str]] = None,
) -> str:
    """Render an aligned ASCII table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = [title, "=" * len(title), line(headers),
           line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    for note in notes or ():
        out.append(f"* {note}")
    return "\n".join(out) + "\n"

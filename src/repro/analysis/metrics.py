"""Evaluation metrics (the quantities Table 4 reports)."""

from __future__ import annotations

from repro.errors import ReproError


def gops(ops: int, seconds: float, instances: int = 1) -> float:
    """Aggregate throughput in giga-operations per second.

    ``instances`` accelerator instances process independent images
    (batch parallelism), multiplying throughput but not reducing
    single-image latency.
    """
    if seconds <= 0:
        raise ReproError("seconds must be positive")
    return ops / seconds / 1e9 * instances


def dsp_efficiency(gops_value: float, dsps: int) -> float:
    """GOPS per DSP slice (Table 4's 'DSP Effi.')."""
    if dsps <= 0:
        raise ReproError("dsps must be positive")
    return gops_value / dsps


def energy_efficiency(gops_value: float, power_w: float) -> float:
    """GOPS per watt (Table 4's 'Energy Effi.')."""
    if power_w <= 0:
        raise ReproError("power must be positive")
    return gops_value / power_w


def speedup(ours: float, baseline: float) -> float:
    """Ratio used for the paper's '1.8x higher performance' claims."""
    if baseline <= 0:
        raise ReproError("baseline must be positive")
    return ours / baseline


def relative_error(estimated: float, measured: float) -> float:
    """|esti - real| / real — the Section-6.2 estimation-error metric."""
    if measured <= 0:
        raise ReproError("measured value must be positive")
    return abs(estimated - measured) / measured

"""Export experiment rows to CSV / JSON for external plotting.

The benchmarks print ASCII tables; anyone regenerating the paper's
*figures* graphically will want the raw series instead.  Works on any
list of flat dataclass instances (the experiment row types).
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict, fields, is_dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.errors import ReproError


def _row_dict(row) -> dict:
    if not is_dataclass(row):
        raise ReproError(f"can only export dataclass rows, got {type(row)}")
    out = {}
    for key, value in asdict(row).items():
        if isinstance(value, (int, float, str, bool)) or value is None:
            out[key] = value
        else:
            out[key] = str(value)
    return out


def rows_to_csv(
    rows: Sequence, path: Union[str, Path, None] = None,
    columns: Optional[List[str]] = None,
) -> str:
    """Serialise dataclass rows to CSV text (optionally writing a file)."""
    if not rows:
        raise ReproError("nothing to export")
    dicts = [_row_dict(row) for row in rows]
    if columns is None:
        columns = [f.name for f in fields(rows[0]) if f.name in dicts[0]]
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, extrasaction="ignore")
    writer.writeheader()
    writer.writerows(dicts)
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


def rows_to_json(
    rows: Sequence, path: Union[str, Path, None] = None
) -> str:
    """Serialise dataclass rows to a JSON array."""
    if not rows:
        raise ReproError("nothing to export")
    text = json.dumps([_row_dict(row) for row in rows], indent=2)
    if path is not None:
        Path(path).write_text(text)
    return text

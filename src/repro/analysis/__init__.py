"""Metrics, roofline analysis, report formatting and data export."""

from repro.analysis.metrics import (
    dsp_efficiency,
    energy_efficiency,
    gops,
    relative_error,
    speedup,
)
from repro.analysis.report import Table, format_table
from repro.analysis.roofline import RooflinePoint, layer_roofline
from repro.analysis.export import rows_to_csv, rows_to_json

__all__ = [
    "RooflinePoint",
    "Table",
    "dsp_efficiency",
    "energy_efficiency",
    "format_table",
    "gops",
    "layer_roofline",
    "relative_error",
    "rows_to_csv",
    "rows_to_json",
    "speedup",
]

"""Roofline analysis of CONV layers on the hybrid accelerator.

Explains the Figure-6 fluctuation quantitatively: a layer's attainable
performance is ``min(peak_compute, bandwidth x operational_intensity)``.
Winograd mode *raises the compute roof* (fewer multiplications per
output) but *lowers the operational intensity* (PT^2 coefficients per
3x3 kernel loaded from DRAM), so the two modes cross exactly where the
paper says they do.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.params import AcceleratorConfig
from repro.errors import UnsupportedLayerError
from repro.fpga.device import FpgaDevice
from repro.ir.graph import LayerInfo
from repro.ir.layers import Conv2D, Dense


@dataclass(frozen=True)
class RooflinePoint:
    """One layer x mode point on the roofline plot."""

    layer_name: str
    mode: str
    ops: int
    dram_bytes: float
    peak_gops: float
    bandwidth_gbs: float

    @property
    def operational_intensity(self) -> float:
        """Ops per DRAM byte."""
        return self.ops / self.dram_bytes

    @property
    def attainable_gops(self) -> float:
        """min(compute roof, memory roof x OI)."""
        memory_roof = self.bandwidth_gbs * self.operational_intensity
        return min(self.peak_gops, memory_roof)

    @property
    def bound(self) -> str:
        return (
            "compute"
            if self.peak_gops <= self.bandwidth_gbs * self.operational_intensity
            else "memory"
        )

    @property
    def ridge_intensity(self) -> float:
        """OI at which this configuration's roofline turns flat."""
        return self.peak_gops / self.bandwidth_gbs


def layer_roofline(
    cfg: AcceleratorConfig,
    device: FpgaDevice,
    info: LayerInfo,
    mode: str,
) -> RooflinePoint:
    """Roofline point of ``info`` under ``mode`` on one instance."""
    layer = info.layer
    if isinstance(layer, Dense):
        c, k = info.input_shape.size, layer.out_features
        r = s = 1
        h = w = 1
    elif isinstance(layer, Conv2D):
        c, k = info.input_shape.channels, layer.out_channels
        r, s = layer.kernel_size
        h, w = info.input_shape.height, info.input_shape.width
    else:
        raise UnsupportedLayerError(
            f"{layer.name}: roofline applies to compute layers"
        )
    out = info.output_shape

    feature_bytes = max(1, (cfg.data_width + 7) // 8)
    weight_bytes = max(1, (cfg.weight_width + 7) // 8)
    if mode == "wino":
        blocks = (-(-r // 3)) * (-(-s // 3))
        wgt_elems = k * c * blocks * cfg.pt * cfg.pt
    else:
        wgt_elems = k * c * r * s
    # Minimum DRAM traffic: inputs once, weights once, outputs once.
    dram_bytes = (
        c * h * w * feature_bytes
        + wgt_elems * weight_bytes
        + out.size * feature_bytes
    )
    bandwidth_gbs = (
        device.memory.bandwidth_bytes / cfg.instances / 1e9
    )
    return RooflinePoint(
        layer_name=layer.name,
        mode=mode,
        ops=info.ops,
        dram_bytes=float(dram_bytes),
        peak_gops=cfg.peak_gops(mode, kernel=max(r, s)),
        bandwidth_gbs=bandwidth_gbs,
    )

"""Hardware-candidate enumeration (DSE Step 1).

For each supported tile size ``PT`` the parallel factors ``PI >= PO``
are grown until the Table-2 resource constraints fail on one die; the
instance count ``NI`` then ranges up to ``instances-per-die x dies``
(instances never straddle dies — the paper places two per VU9P die).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.arch.params import SUPPORTED_PT, AcceleratorConfig
from repro.errors import DseError
from repro.estimator.calibration import CalibrationProfile, get_calibration
from repro.estimator.resources import estimate_resources, instances_per_die
from repro.fpga.device import FpgaDevice
from repro.fpga.resources import ResourceBudget

#: Parallel-factor values explored (powers of two, the hardware-friendly
#: choice for broadcast trees).
PARALLEL_FACTORS = (1, 2, 4, 8, 16, 32)


#: Ranking objectives understood by Step 3.
OBJECTIVES = ("throughput", "latency")

#: Execution backends for ``jobs > 1`` candidate evaluation.
EXECUTORS = ("serial", "thread", "process")

#: Step-2/3 evaluation backends: the per-candidate scalar model or the
#: numpy candidate-batch model (byte-identical selections either way).
ESTIMATORS = ("scalar", "vectorized")


@dataclass(frozen=True)
class DseOptions:
    """Knobs of the exploration.

    The evaluation knobs (``use_cache``, ``prune``, ``best_first``,
    ``jobs``, ``executor``) change *how fast* Step 3 runs, never *what*
    it selects:
    every combination returns the brute-force design point and runner-up
    ranking bit for bit.

    Invalid combinations raise :class:`~repro.errors.DseError` at
    construction time, not deep inside :func:`~repro.dse.engine.run_dse`.
    """

    max_instances: Optional[int] = None
    frequency_mhz: Optional[float] = None  # default: device frequency
    data_width: int = 12
    weight_width: int = 8
    objective: str = "throughput"  # "throughput" | "latency"
    buffer_presets: Optional[Tuple[int, int, int]] = None
    top_k: int = 5
    use_cache: bool = True  # memoize per-layer estimates
    prune: bool = True  # skip candidates that cannot reach the top_k
    best_first: bool = False  # evaluate in lower-bound order
    jobs: int = 1  # parallel candidate evaluations
    #: "serial" | "thread" | "process" — how ``jobs > 1`` evaluations
    #: run.  "serial" with ``jobs > 1`` auto-upgrades to "thread" (the
    #: pre-executor behaviour); "process" ships pickled candidate
    #: batches to a ProcessPoolExecutor, which scales on GIL builds.
    executor: str = "serial"
    #: "scalar" | "vectorized" — how Step 2/3 evaluates candidates.
    #: "vectorized" batches surviving candidates through
    #: :class:`repro.estimator.vectorized.BatchLayerEstimator` (numpy
    #: column math, byte-identical selection).  With ``jobs > 1`` it
    #: requires the process executor: candidate batches ship to worker
    #: processes that each run the numpy path ("serial" auto-upgrades
    #: to "process"; "thread" is rejected — the batch math holds the
    #: GIL, so threads serialise it).
    estimator: str = "scalar"

    def __post_init__(self) -> None:
        if self.estimator not in ESTIMATORS:
            raise DseError(
                f"unknown estimator {self.estimator!r}; "
                f"expected one of {ESTIMATORS}"
            )
        if self.executor not in EXECUTORS:
            raise DseError(
                f"unknown executor {self.executor!r}; "
                f"expected one of {EXECUTORS}"
            )
        if self.estimator == "vectorized" and self.jobs > 1 and (
            self.executor == "thread"
        ):
            raise DseError(
                "estimator='vectorized' with jobs > 1 requires "
                "executor='process': the numpy batch math holds the "
                "GIL, so a thread pool would serialise it"
            )
        if self.jobs > 1 and self.executor == "serial":
            upgraded = (
                "process" if self.estimator == "vectorized" else "thread"
            )
            object.__setattr__(self, "executor", upgraded)
        if self.objective not in OBJECTIVES:
            raise DseError(
                f"unknown objective {self.objective!r}; "
                f"expected one of {OBJECTIVES}"
            )
        if self.top_k < 1:
            raise DseError(f"top_k must be >= 1, got {self.top_k}")
        if self.max_instances is not None and self.max_instances < 1:
            raise DseError(
                f"max_instances must be >= 1, got {self.max_instances}"
            )
        if self.jobs < 1:
            raise DseError(f"jobs must be >= 1, got {self.jobs}")
        if self.frequency_mhz is not None and self.frequency_mhz <= 0:
            raise DseError(
                f"frequency_mhz must be positive, got {self.frequency_mhz}"
            )
        if self.data_width <= 0 or self.weight_width <= 0:
            raise DseError("data/weight widths must be positive")
        if self.buffer_presets is not None and (
            len(self.buffer_presets) != 3
            or any(size <= 0 for size in self.buffer_presets)
        ):
            raise DseError(
                "buffer_presets must be three positive sizes "
                f"(input, weight, output), got {self.buffer_presets!r}"
            )


@dataclass(frozen=True)
class HardwareCandidate:
    """One feasible hardware configuration."""

    cfg: AcceleratorConfig
    per_instance: ResourceBudget
    total: ResourceBudget

    @property
    def peak_macs_per_cycle(self) -> int:
        return self.cfg.macs_per_cycle * self.cfg.instances


def default_buffers(device: FpgaDevice) -> Tuple[int, int, int]:
    """(input, weight, output) ping-pong half sizes in channel vectors.

    Cloud-class parts get the large preset the VU9P design uses; small
    embedded parts get a quarter of it.
    """
    if device.resources.brams >= 1000:
        return (32768, 16384, 16384)
    return (8192, 4096, 4096)


def explore_hardware(
    device: FpgaDevice,
    options: Optional[DseOptions] = None,
    cal: Optional[CalibrationProfile] = None,
) -> List[HardwareCandidate]:
    """Enumerate all feasible (PT, PI, PO, NI) combinations."""
    options = options or DseOptions()
    if cal is None:
        cal = get_calibration(device.name)
    freq = options.frequency_mhz or device.frequency_mhz
    buffers = options.buffer_presets or default_buffers(device)
    candidates: List[HardwareCandidate] = []
    for pt in SUPPORTED_PT:
        for pi in PARALLEL_FACTORS:
            for po in PARALLEL_FACTORS:
                if po > pi:
                    continue  # Table-2: PI >= PO >= 1
                base = AcceleratorConfig(
                    pi=pi,
                    po=po,
                    pt=pt,
                    data_width=options.data_width,
                    weight_width=options.weight_width,
                    instances=1,
                    input_buffer_vecs=buffers[0],
                    weight_buffer_vecs=buffers[1],
                    output_buffer_vecs=buffers[2],
                    frequency_mhz=freq,
                )
                per_die = instances_per_die(base, device, cal)
                if per_die < 1:
                    continue
                max_ni = per_die * device.dies
                if options.max_instances is not None:
                    max_ni = min(max_ni, options.max_instances)
                for ni in range(1, max_ni + 1):
                    cfg = replace(base, instances=ni)
                    one = estimate_resources(
                        cfg, device, cal, per_instance=True
                    )
                    total = one * ni
                    if not total.fits_in(device.resources):
                        break
                    candidates.append(
                        HardwareCandidate(
                            cfg=cfg, per_instance=one, total=total
                        )
                    )
    if not candidates:
        raise DseError(
            f"no feasible accelerator configuration for {device.name}"
        )
    return candidates

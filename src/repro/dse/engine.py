"""DSE Steps 2 and 3: per-layer mapping and candidate selection.

Step 2 evaluates, for a fixed hardware candidate, every compute layer
under the four (mode x dataflow) combinations with the Eq. 12-15 model
and keeps the argmin — the per-layer design choices are independent
given the hardware, so this is exact, not heuristic.  Step 3 ranks the
candidates by the chosen objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.arch.params import AcceleratorConfig
from repro.errors import DseError, ReproError
from repro.estimator.calibration import CalibrationProfile, get_calibration
from repro.estimator.latency import (
    NetworkEstimate,
    estimate_layer,
    estimate_network,
)
from repro.fpga.device import FpgaDevice
from repro.fpga.resources import ResourceBudget
from repro.ir.graph import Network
from repro.mapping.partition import fused_pool_for
from repro.mapping.strategy import (
    DATAFLOWS,
    MODES,
    LayerMapping,
    NetworkMapping,
    winograd_supported,
)
from repro.dse.space import DseOptions, HardwareCandidate, explore_hardware


@dataclass(frozen=True)
class DseResult:
    """The selected design point."""

    device_name: str
    cfg: AcceleratorConfig
    mapping: NetworkMapping
    estimate: NetworkEstimate
    per_instance: ResourceBudget
    total: ResourceBudget
    candidates_considered: int
    runners_up: Tuple["DseResult", ...] = ()

    @property
    def throughput_gops(self) -> float:
        return self.estimate.gops

    @property
    def latency_ms(self) -> float:
        return self.estimate.latency * 1e3

    def summary(self) -> str:
        counts = self.mapping.counts()
        return (
            f"{self.device_name}: {self.cfg.describe()}\n"
            f"  latency {self.latency_ms:.2f} ms/image, "
            f"{self.throughput_gops:.1f} GOPS aggregate\n"
            f"  resources {self.total}\n"
            f"  modes: {counts['wino']} wino / {counts['spat']} spat; "
            f"dataflows: {counts['is']} IS / {counts['ws']} WS"
        )


def map_network(
    cfg: AcceleratorConfig,
    device: FpgaDevice,
    network: Network,
    cal: Optional[CalibrationProfile] = None,
) -> Tuple[NetworkMapping, NetworkEstimate]:
    """Step 2: best (mode, dataflow) per layer for a fixed candidate.

    Raises :class:`DseError` when some layer fits no combination (e.g.
    buffers too small for even one group).
    """
    if cal is None:
        cal = get_calibration(device.name)
    selections: List[LayerMapping] = []
    for info in network.compute_layers():
        pool = fused_pool_for(network, info.index)
        best = None
        for mode in MODES:
            if mode == "wino" and not winograd_supported(info):
                continue
            for dataflow in DATAFLOWS:
                try:
                    est = estimate_layer(
                        cfg, device, info, mode, dataflow, cal, pool
                    )
                except ReproError:
                    continue
                if best is None or est.latency < best[0]:
                    best = (est.latency, mode, dataflow)
        if best is None:
            raise DseError(
                f"layer {info.layer.name!r} fits no (mode, dataflow) on "
                f"{device.name} with {cfg.describe()}"
            )
        selections.append(LayerMapping(info.layer.name, best[1], best[2]))
    mapping = NetworkMapping(network.name, selections)
    estimate = estimate_network(cfg, device, network, mapping, cal)
    return mapping, estimate


def _objective(estimate: NetworkEstimate, objective: str) -> float:
    """Lower is better."""
    if objective == "latency":
        return estimate.latency
    if objective == "throughput":
        return -estimate.gops
    raise DseError(f"unknown objective {objective!r}")


def run_dse(
    device: FpgaDevice,
    network: Network,
    options: Optional[DseOptions] = None,
    cal: Optional[CalibrationProfile] = None,
) -> DseResult:
    """Full 3-step DSE; returns the best design point (with runners-up
    in ``runners_up`` for inspection)."""
    options = options or DseOptions()
    if cal is None:
        cal = get_calibration(device.name)
    candidates = explore_hardware(device, options, cal)
    scored: List[Tuple[float, HardwareCandidate, NetworkMapping,
                       NetworkEstimate]] = []
    for candidate in candidates:
        try:
            mapping, estimate = map_network(
                candidate.cfg, device, network, cal
            )
        except DseError:
            continue
        scored.append(
            (_objective(estimate, options.objective), candidate, mapping,
             estimate)
        )
    if not scored:
        raise DseError(
            f"no candidate can run {network.name!r} on {device.name}"
        )
    scored.sort(key=lambda item: item[0])

    def to_result(item, runners=()) -> DseResult:
        _, candidate, mapping, estimate = item
        return DseResult(
            device_name=device.name,
            cfg=candidate.cfg,
            mapping=mapping,
            estimate=estimate,
            per_instance=candidate.per_instance,
            total=candidate.total,
            candidates_considered=len(candidates),
            runners_up=tuple(runners),
        )

    runners = [to_result(item) for item in scored[1 : options.top_k]]
    return to_result(scored[0], runners)

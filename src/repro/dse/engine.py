"""DSE Steps 2 and 3: per-layer mapping and candidate selection.

Step 2 evaluates, for a fixed hardware candidate, every compute layer
under the four (mode x dataflow) combinations with the Eq. 12-15 model
and keeps the argmin — the per-layer design choices are independent
given the hardware, so this is exact, not heuristic.  Step 3 ranks the
candidates by the chosen objective.

Step 3 runs through three accelerations, all of which preserve the
brute-force selection bit for bit:

* **memoization** — per-layer estimates go through an
  :class:`~repro.pipeline.cache.EvaluationCache`, deduplicating repeated
  layer shapes and the final re-estimate of the selected mapping;
* **pruning** — a lower bound over *all four* module times
  (``latency >= sum of per-layer min-over-modes
  max(T_CP, T_LDI, T_LDW, T_SV)``, Eq. 6-11) is admissible, so any
  candidate whose bound cannot beat the current ``top_k``-th objective
  is skipped without affecting the winner *or* the runners-up — the
  bandwidth terms prune memory-bound candidates a compute-only bound
  would have to evaluate;
* **parallelism** — ``DseOptions.jobs`` evaluates candidates on a
  thread pool (``executor="thread"``) or ships pickled candidate
  batches to a process pool (``executor="process"``, the one that
  scales on GIL builds); either way results are re-ranked by
  (objective, enumeration index), which is exactly the stable order of
  the serial path.

The process backend's work unit is a batch of candidate indices; each
worker holds the (device, network, calibration, candidates) payload from
its initializer plus a local :class:`EvaluationCache` seeded with the
parent cache's entries, and returns ``(items, cache delta, stats)`` so
the parent merges worker-computed entries (and their hit/miss counters)
back into the shared — possibly store-backed — cache.
"""

from __future__ import annotations

import heapq
import math
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.arch.params import AcceleratorConfig
from repro.errors import DseError, ReproError
from repro.estimator.calibration import CalibrationProfile, get_calibration
from repro.estimator.latency import (
    NetworkEstimate,
    _module_times,
    estimate_layer,
    estimate_network,
)
from repro.estimator.vectorized import BatchLayerEstimator
from repro.fpga.device import FpgaDevice
from repro.fpga.resources import ResourceBudget
from repro.ir.graph import Network
from repro.mapping.partition import fused_pool_for
from repro.mapping.strategy import (
    DATAFLOWS,
    MODES,
    LayerMapping,
    NetworkMapping,
    winograd_supported,
)
from repro.pipeline.cache import CacheStats, EvaluationCache
from repro.dse.space import DseOptions, HardwareCandidate, explore_hardware


@dataclass(frozen=True)
class DseResult:
    """The selected design point."""

    device_name: str
    cfg: AcceleratorConfig
    mapping: NetworkMapping
    estimate: NetworkEstimate
    per_instance: ResourceBudget
    total: ResourceBudget
    candidates_considered: int
    runners_up: Tuple["DseResult", ...] = ()
    candidates_evaluated: int = 0
    candidates_pruned: int = 0
    cache_stats: Optional[CacheStats] = None

    @property
    def throughput_gops(self) -> float:
        return self.estimate.gops

    @property
    def latency_ms(self) -> float:
        return self.estimate.latency * 1e3

    def summary(self) -> str:
        counts = self.mapping.counts()
        return (
            f"{self.device_name}: {self.cfg.describe()}\n"
            f"  latency {self.latency_ms:.2f} ms/image, "
            f"{self.throughput_gops:.1f} GOPS aggregate\n"
            f"  resources {self.total}\n"
            f"  modes: {counts['wino']} wino / {counts['spat']} spat; "
            f"dataflows: {counts['is']} IS / {counts['ws']} WS"
        )


def map_network(
    cfg: AcceleratorConfig,
    device: FpgaDevice,
    network: Network,
    cal: Optional[CalibrationProfile] = None,
    cache: Optional[EvaluationCache] = None,
) -> Tuple[NetworkMapping, NetworkEstimate]:
    """Step 2: best (mode, dataflow) per layer for a fixed candidate.

    Raises :class:`DseError` when some layer fits no combination (e.g.
    buffers too small for even one group).  With ``cache`` the per-layer
    estimates are memoized (identical results, fewer model evaluations).
    """
    if cal is None:
        cal = get_calibration(device.name)
    estimate_fn = cache.estimate if cache is not None else estimate_layer
    selections: List[LayerMapping] = []
    for info in network.compute_layers():
        pool = fused_pool_for(network, info.index)
        best = None
        for mode in MODES:
            if mode == "wino" and not winograd_supported(info):
                continue
            for dataflow in DATAFLOWS:
                try:
                    est = estimate_fn(
                        cfg, device, info, mode, dataflow, cal, pool
                    )
                except ReproError:
                    continue
                if best is None or est.latency < best[0]:
                    best = (est.latency, mode, dataflow)
        if best is None:
            raise DseError(
                f"layer {info.layer.name!r} fits no (mode, dataflow) on "
                f"{device.name} with {cfg.describe()}"
            )
        selections.append(LayerMapping(info.layer.name, best[1], best[2]))
    mapping = NetworkMapping(network.name, selections)
    estimate = estimate_network(cfg, device, network, mapping, cal, cache)
    return mapping, estimate


def _objective(estimate: NetworkEstimate, objective: str) -> float:
    """Lower is better."""
    if objective == "latency":
        return estimate.latency
    if objective == "throughput":
        return -estimate.gops
    raise DseError(f"unknown objective {objective!r}")


def latency_lower_bound(
    cfg: AcceleratorConfig, device: FpgaDevice, network: Network
) -> float:
    """Admissible network-latency bound for one candidate (seconds).

    Every (mode, dataflow) latency is ``body + T_penalty`` where the
    body maxes the Eq. 6-11 module times (Eq. 12-15): ``T_CP`` and
    ``T_SV`` appear directly, and the load terms appear scaled by a
    group count ``>= 1`` (``T_LDI`` / ``GK * T_LDI``,
    ``N_rows * T_LDW`` / ``T_LDW``).  Hence for *either* dataflow

        latency >= max(T_CP, T_LDI, T_LDW, T_SV)

    without partitioning a single layer.  Summing each layer's cheapest
    supported mode bounds the network from below; including the
    bandwidth terms (not just ``T_CP``) prunes memory-bound candidates
    that a compute-only bound would have to evaluate.
    """
    total = 0.0
    for info in network.compute_layers():
        per_mode = [max(_module_times(cfg, device, info, "spat"))]
        if winograd_supported(info):
            per_mode.append(max(_module_times(cfg, device, info, "wino")))
        total += min(per_mode)
    return total


def objective_lower_bound(
    lb_latency: float, objective: str, ops: int, instances: int
) -> float:
    """Lower bound on ``_objective`` given a latency lower bound."""
    if objective == "latency":
        return lb_latency
    if objective == "throughput":
        if lb_latency <= 0:
            return -math.inf
        # gops <= ops / lb_latency * NI  =>  -gops >= this bound.
        return -(ops / lb_latency / 1e9) * instances
    raise DseError(f"unknown objective {objective!r}")


def _candidate_bounds(
    candidates: List[HardwareCandidate],
    device: FpgaDevice,
    network: Network,
    objective: str,
) -> List[float]:
    """Objective lower bound per candidate.

    The module times depend only on (PI, PO, PT, FREQ) plus — for the
    Eq. 8-11 bandwidth terms — the data widths and the instance count
    (instances share DRAM bandwidth), so the latency bound is memoized
    on that projection: candidates differing only in buffer sizes share
    one entry.
    """
    total_ops = sum(info.ops for info in network.compute_layers())
    lb_memo: Dict[Tuple, float] = {}
    bounds = []
    for candidate in candidates:
        cfg = candidate.cfg
        key = (
            cfg.pi, cfg.po, cfg.pt, cfg.frequency_mhz,
            cfg.data_width, cfg.weight_width, cfg.instances,
        )
        lb_latency = lb_memo.get(key)
        if lb_latency is None:
            lb_latency = latency_lower_bound(cfg, device, network)
            lb_memo[key] = lb_latency
        bounds.append(
            objective_lower_bound(
                lb_latency, objective, total_ops, cfg.instances
            )
        )
    return bounds


#: Per-process worker state of ``executor="process"`` (populated by the
#: pool initializer — ProcessPoolExecutor workers can only receive
#: one-time state that way, and re-pickling the network and candidate
#: list per batch would dominate the work).
_worker_state: dict = {}


def _process_worker_init(payload) -> None:
    """Install the evaluation payload in this pool worker.

    ``payload`` is ``(device, network, cal, candidates, seed_entries,
    estimator)`` where ``seed_entries`` is a parent-cache snapshot (or
    ``None`` when the run is uncached).  The worker cache is warmed
    from the snapshot, so a store-backed parent hands its persisted
    entries to every worker for free.  ``estimator`` selects how this
    worker evaluates its batches — the scalar per-layer model or one
    :class:`BatchLayerEstimator` built lazily on the first batch and
    reused for the worker's lifetime.
    """
    device, network, cal, candidates, seed_entries, estimator = payload
    cache = None
    if seed_entries is not None:
        cache = EvaluationCache()
        cache.warm(*seed_entries)
    _worker_state.update(
        device=device,
        network=network,
        cal=cal,
        candidates=candidates,
        cache=cache,
        estimator=estimator,
        batch_estimator=None,
    )


def _process_evaluate_batch(indices):
    """Evaluate one batch of candidate indices in a pool worker.

    Returns ``(items, estimates, partitions, stats)``: the feasible
    ``(index, mapping, estimate)`` triples plus the worker cache's dirty
    delta and counter delta for this batch (``None`` when uncached).
    Everything crossing the process boundary is pickleable by value.
    The vectorized estimator's offers land in the worker cache and ride
    the same dirty delta home, so a store-backed parent persists a
    process-vectorized run's results exactly like a serial one's.
    """
    device = _worker_state["device"]
    network = _worker_state["network"]
    cal = _worker_state["cal"]
    candidates = _worker_state["candidates"]
    cache = _worker_state["cache"]
    before = cache.stats if cache is not None else None
    items = []
    if _worker_state["estimator"] == "vectorized":
        batch_estimator = _worker_state["batch_estimator"]
        if batch_estimator is None:
            batch_estimator = BatchLayerEstimator(
                device, network, cal=cal, cache=cache
            )
            _worker_state["batch_estimator"] = batch_estimator
        batch = batch_estimator.map_candidates(
            [candidates[index].cfg for index in indices]
        )
        for index, result in zip(indices, batch):
            if result is not None:
                items.append((index, result[0], result[1]))
    else:
        for index in indices:
            try:
                mapping, estimate = map_network(
                    candidates[index].cfg, device, network, cal,
                    cache=cache,
                )
            except DseError:
                continue
            items.append((index, mapping, estimate))
    if cache is None:
        return items, None, None, None
    estimates, partitions = cache.take_dirty()
    return items, estimates, partitions, cache.stats - before


def run_dse(
    device: FpgaDevice,
    network: Network,
    options: Optional[DseOptions] = None,
    cal: Optional[CalibrationProfile] = None,
    cache: Optional[EvaluationCache] = None,
    candidates: Optional[List[HardwareCandidate]] = None,
) -> DseResult:
    """Full 3-step DSE; returns the best design point (with runners-up
    in ``runners_up`` for inspection).

    The cached / pruned / parallel paths (thread *and* process
    executors) all reproduce the brute-force selection exactly —
    including the ``top_k`` runner-up ranking — so
    ``DseOptions(use_cache=False, prune=False, jobs=1)`` is only useful
    as the reference the benchmarks compare against.
    ``options.use_cache=False`` disables memoization even when a shared
    ``cache`` is supplied.  ``candidates`` may carry a pre-enumerated
    Step-1 result (it must match ``explore_hardware(device, options)``).
    """
    options = options or DseOptions()
    if cal is None:
        cal = get_calibration(device.name)
    shared_cache = cache if options.use_cache else None
    if not options.use_cache:
        cache = None
    elif cache is None:
        cache = EvaluationCache()
    stats_before = cache.stats if cache is not None else None
    if candidates is None:
        candidates = explore_hardware(device, options, cal)

    bounds: Optional[List[float]] = None
    if options.prune or options.best_first:
        bounds = _candidate_bounds(
            candidates, device, network, options.objective
        )
    order = list(range(len(candidates)))
    if options.best_first:
        assert bounds is not None
        order.sort(key=lambda index: bounds[index])

    # item: (objective, enumeration index, candidate, mapping, estimate)
    scored: List[Tuple[float, int, HardwareCandidate, NetworkMapping,
                       NetworkEstimate]] = []
    worst_of_top_k: List[float] = []  # max-heap (negated) of size <= top_k
    pruned = 0

    def kth_best() -> float:
        if len(worst_of_top_k) < options.top_k:
            return math.inf
        return -worst_of_top_k[0]

    def prunable(index: int) -> bool:
        # Strict inequality: a candidate tying the k-th best objective
        # could still displace it on enumeration order, so it must be
        # evaluated for the ranking to stay byte-identical.
        return options.prune and bounds[index] > kth_best()

    def evaluate(index: int):
        candidate = candidates[index]
        try:
            mapping, estimate = map_network(
                candidate.cfg, device, network, cal, cache=cache
            )
        except DseError:
            return None
        objective = _objective(estimate, options.objective)
        return (objective, index, candidate, mapping, estimate)

    def admit(item) -> None:
        scored.append(item)
        objective = item[0]
        if len(worst_of_top_k) < options.top_k:
            heapq.heappush(worst_of_top_k, -objective)
        elif objective < -worst_of_top_k[0]:
            heapq.heapreplace(worst_of_top_k, -objective)

    if options.jobs > 1 and options.executor == "process":
        # Candidate batches ship to worker processes; each worker runs
        # the configured estimator (the vectorized one amortises its
        # per-worker construction over bigger batches).  Merging in
        # submission order keeps the selection — and a store-backed
        # cache's first-writer entries — byte-identical to serial.
        if options.estimator == "vectorized":
            batch = (
                max(64 * options.jobs, 1)
                if options.prune else max(len(order), 1)
            )
        else:
            batch = max(2 * options.jobs, 1)
        payload = (
            device, network, cal, candidates,
            cache.snapshot_entries() if cache is not None else None,
            options.estimator,
        )
        with ProcessPoolExecutor(
            max_workers=options.jobs,
            initializer=_process_worker_init,
            initargs=(payload,),
        ) as pool:
            for start in range(0, len(order), batch):
                survivors = []
                for index in order[start:start + batch]:
                    if prunable(index):
                        pruned += 1
                        continue
                    survivors.append(index)
                if not survivors:
                    continue
                chunk = -(-len(survivors) // options.jobs)
                futures = [
                    pool.submit(
                        _process_evaluate_batch, survivors[i:i + chunk]
                    )
                    for i in range(0, len(survivors), chunk)
                ]
                # Merge in submission (enumeration) order so first-writer
                # cache entries match the serial path's first encounter.
                for future in futures:
                    items, estimates, partitions, stats = future.result()
                    if cache is not None and estimates is not None:
                        cache.merge(estimates, partitions, stats)
                    for index, mapping, estimate in items:
                        admit((
                            _objective(estimate, options.objective),
                            index, candidates[index], mapping, estimate,
                        ))
    elif options.estimator == "vectorized":
        # In-process candidate-batch evaluation: bounds/best-first
        # still prune first, and only the survivors of each batch reach
        # the numpy column math.  Pruning is checked per batch (exactly
        # like the thread/process paths check it per submission batch),
        # so the pruned *count* can differ from the serial scalar path
        # while the selection — final sort included — stays
        # byte-identical.
        # Only a *caller-supplied* cache is threaded through: the batch
        # estimator memoizes its own partitions and never re-reads
        # estimates, so offers into the ephemeral internal cache would
        # be pure key-hashing cost with no possible reader — a shared
        # cache, by contrast, outlives the run (store flushes, later
        # scalar lookups) and gets the selected rows offered into it.
        batch_estimator = BatchLayerEstimator(
            device, network, cal=cal, cache=shared_cache
        )
        step = 64 if options.prune else max(len(order), 1)
        for start in range(0, len(order), step):
            survivors = []
            for index in order[start:start + step]:
                if prunable(index):
                    pruned += 1
                    continue
                survivors.append(index)
            if not survivors:
                continue
            batch = batch_estimator.map_candidates(
                [candidates[index].cfg for index in survivors]
            )
            for index, result in zip(survivors, batch):
                if result is None:
                    continue
                mapping, estimate = result
                admit((
                    _objective(estimate, options.objective),
                    index, candidates[index], mapping, estimate,
                ))
    elif options.jobs > 1:
        batch = max(2 * options.jobs, 1)
        with ThreadPoolExecutor(max_workers=options.jobs) as pool:
            for start in range(0, len(order), batch):
                submitted = []
                for index in order[start:start + batch]:
                    if prunable(index):
                        pruned += 1
                        continue
                    submitted.append(pool.submit(evaluate, index))
                for future in submitted:
                    item = future.result()
                    if item is not None:
                        admit(item)
    else:
        for index in order:
            if prunable(index):
                pruned += 1
                continue
            item = evaluate(index)
            if item is not None:
                admit(item)

    if not scored:
        raise DseError(
            f"no candidate can run {network.name!r} on {device.name}"
        )
    # (objective, enumeration index) replicates the stable sort of the
    # brute-force path regardless of evaluation order.
    scored.sort(key=lambda item: (item[0], item[1]))
    run_stats = (
        cache.stats - stats_before if cache is not None else None
    )

    def to_result(item, runners=()) -> DseResult:
        _, _, candidate, mapping, estimate = item
        return DseResult(
            device_name=device.name,
            cfg=candidate.cfg,
            mapping=mapping,
            estimate=estimate,
            per_instance=candidate.per_instance,
            total=candidate.total,
            candidates_considered=len(candidates),
            runners_up=tuple(runners),
            candidates_evaluated=len(scored),
            candidates_pruned=pruned,
            cache_stats=run_stats,
        )

    runners = [to_result(item) for item in scored[1 : options.top_k]]
    return to_result(scored[0], runners)

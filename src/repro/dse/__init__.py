"""Design space exploration (Section 5.3).

Three steps, matching the paper's algorithm:

1. Enumerate hardware candidates (PT, PI, PO, NI) under the Table-2
   resource constraints (``explore_hardware``).
2. For every candidate, select each layer's best (mode, dataflow) using
   the Eq. 12-15 latency model (``map_network``) — O(N x L).
3. Pick the candidate with the lowest total latency (``run_dse``) — O(N).
"""

from repro.dse.space import DseOptions, HardwareCandidate, explore_hardware
from repro.dse.engine import (
    DseResult,
    latency_lower_bound,
    map_network,
    objective_lower_bound,
    run_dse,
)

__all__ = [
    "DseOptions",
    "DseResult",
    "HardwareCandidate",
    "explore_hardware",
    "latency_lower_bound",
    "map_network",
    "objective_lower_bound",
    "run_dse",
]

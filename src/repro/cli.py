"""Command-line interface: ``python -m repro <command>``.

Commands mirror the framework's steps:

* ``devices`` — list the FPGA catalog.
* ``models`` — list the model zoo.
* ``dse`` — explore a model on a device and print the selection.
* ``compile`` — compile a model and write program.bin / program.asm.
* ``simulate`` — run the cycle-approximate simulation end to end.
* ``emit-hls`` — write the HLS project for a DSE-selected design.
* ``experiments`` — regenerate a paper table/figure by name.

All model-evaluating commands share one
:class:`~repro.pipeline.session.PipelineSession`, so the DSE result,
compiled model and runtime are each computed once per invocation.
With ``--cache-dir`` the session is backed by an on-disk
:class:`~repro.pipeline.store.EvaluationStore`: layer estimates warm
from disk at startup and the newly computed delta is flushed when the
command finishes, so repeated invocations over the model zoo skip the
analytical model almost entirely.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.compiler import CompilerOptions
from repro.dse.space import EXECUTORS, OBJECTIVES, DseOptions
from repro.errors import ReproError
from repro.estimator import estimate_resources
from repro.fpga import DEVICES, get_device
from repro.hls import HlsConfig, emit_project
from repro.ir import zoo
from repro.isa import disassemble
from repro.pipeline import PipelineSession


def _cmd_devices(_args) -> int:
    for name in sorted(DEVICES):
        print(f"{name:10s} {DEVICES[name]}")
    return 0


def _cmd_models(_args) -> int:
    for name in sorted(zoo.MODELS):
        net = zoo.get_model(name)
        print(
            f"{name:12s} {len(net)} layers, "
            f"{net.total_macs / 1e9:.2f} GMACs, input {net.input_shape}"
        )
    return 0


def _session(args) -> PipelineSession:
    """One shared pipeline session for the model-evaluating commands.

    Model / device specs are resolved by the session itself (zoo name or
    JSON path, catalog name).
    """
    options = DseOptions(
        objective=args.objective,
        max_instances=args.max_instances,
        top_k=getattr(args, "top_k", 5),
        jobs=getattr(args, "jobs", 1),
        executor=getattr(args, "executor", "serial"),
    )
    return PipelineSession(
        args.model,
        get_device(args.device),
        options,
        compiler_options=CompilerOptions(quantize=not args.exact),
        seed=args.seed,
        store=args.cache_dir,
    )


def _cmd_dse(args) -> int:
    with _session(args) as session:
        result = session.dse()
        print(result.summary())
        util = result.total.utilisation(session.device.resources)
        print("utilisation: " + ", ".join(
            f"{k} {v * 100:.1f}%" for k, v in util.items()
        ))
        if args.verbose:
            print("\nper-layer mapping:")
            for m in result.mapping:
                print(f"  {m.layer_name:14s} {m.mode}-{m.dataflow}")
            print(
                f"\nevaluated {result.candidates_evaluated}, pruned "
                f"{result.candidates_pruned} of "
                f"{result.candidates_considered} candidates"
            )
            if result.cache_stats is not None:
                print(f"cache: {result.cache_stats.describe()}")
            if session.store is not None:
                session.close()  # flush before reporting the counters
                print(session.store.describe())
    return 0


def _cmd_compile(args) -> int:
    with _session(args) as session:
        compiled = session.compiled()
    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    for index, program in enumerate(compiled.programs()):
        stem = f"program{index}" if index else "program"
        program.save(out / f"{stem}.bin")
        (out / f"{stem}.asm").write_text(disassemble(program))
    print(
        f"wrote {compiled.total_instructions} instructions across "
        f"{len(compiled.programs())} segment(s) to {out}"
    )
    return 0


def _cmd_simulate(args) -> int:
    with _session(args) as session:
        network = session.network
        sim = session.simulate(functional=args.functional)
    ops = sum(i.ops for i in network.compute_layers())
    print(
        f"{network.name} on {session.device.name}: "
        f"{sim.seconds * 1e3:.2f} ms/image/instance, "
        f"{ops / sim.seconds / 1e9 * session.cfg.instances:.1f} GOPS "
        f"aggregate, {sim.instructions} instructions"
    )
    for name, stats in sim.modules.items():
        print(f"  {name:9s} {stats.utilisation(sim.cycles) * 100:5.1f}% busy")
    return 0


def _cmd_emit_hls(args) -> int:
    with _session(args) as session:
        files = emit_project(
            HlsConfig.from_config(
                session.cfg, session.device, session.network.name
            ),
            args.output,
        )
    resources = estimate_resources(
        session.cfg, session.device, session.calibration
    )
    print(f"design: {session.cfg.describe()}")
    print(f"estimated resources: {resources}")
    for name, path in files.items():
        print(f"wrote {name}: {path}")
    return 0


def _cmd_experiments(args) -> int:
    from repro.experiments import (
        ablation,
        estimation_error,
        instruction_stats,
        overhead,
        roofline_study,
        scalability,
        table3,
        table4,
        vgg16_case,
    )
    from repro.experiments import figure6 as fig6

    registry = {
        "table3": table3.main,
        "table4": table4.main,
        "figure6": lambda: (fig6.main("vu9p"), fig6.main("pynq-z1")),
        "estimation-error": estimation_error.main,
        "overhead": overhead.main,
        "vgg16-case": vgg16_case.main,
        "ablation": ablation.main,
        "scalability": scalability.main,
        "roofline": roofline_study.main,
        "instruction-stats": instruction_stats.main,
    }
    if args.name not in registry:
        print(f"unknown experiment {args.name!r}; "
              f"available: {sorted(registry)}", file=sys.stderr)
        return 2
    registry[args.name]()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HybridDNN reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="list FPGA catalog").set_defaults(
        func=_cmd_devices
    )
    sub.add_parser("models", help="list model zoo").set_defaults(
        func=_cmd_models
    )

    def add_common(p):
        p.add_argument("--device", default="pynq-z1",
                       help="FPGA catalog name")
        p.add_argument("--model", default="vgg16",
                       help="zoo model name or model JSON path")
        p.add_argument("--objective", default="throughput",
                       choices=OBJECTIVES)
        p.add_argument("--max-instances", type=int, default=None)
        p.add_argument("--seed", type=int, default=2020)
        p.add_argument("--exact", action="store_true",
                       help="disable fixed-point quantisation")
        p.add_argument("--cache-dir", default=None, dest="cache_dir",
                       help="persist layer estimates here across "
                            "invocations (warm start + flush on exit)")

    p = sub.add_parser("dse", help="run design space exploration")
    add_common(p)
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel candidate evaluations")
    p.add_argument("--executor", default="serial",
                   choices=EXECUTORS,
                   help="evaluation backend for --jobs > 1 "
                        "(process scales on GIL builds)")
    p.add_argument("--top-k", type=int, default=5, dest="top_k",
                   help="number of ranked designs to keep")
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=_cmd_dse)

    p = sub.add_parser("compile", help="compile to instruction stream")
    add_common(p)
    p.add_argument("-o", "--output", default="build")
    p.set_defaults(func=_cmd_compile)

    p = sub.add_parser("simulate", help="simulate end to end")
    add_common(p)
    p.add_argument("--functional", action="store_true",
                   help="move real data (slower)")
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("emit-hls", help="emit the HLS project")
    add_common(p)
    p.add_argument("-o", "--output", default="hls_project")
    p.set_defaults(func=_cmd_emit_hls)

    p = sub.add_parser("experiments", help="regenerate a paper artifact")
    p.add_argument("name", help="table3|table4|figure6|estimation-error|"
                                "overhead|vgg16-case|ablation")
    p.set_defaults(func=_cmd_experiments)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

"""Command-line interface: ``python -m repro <command>``.

Commands mirror the framework's steps:

* ``devices`` — list the FPGA catalog.
* ``models`` — list the model zoo.
* ``dse`` — explore a model on a device and print the selection.
* ``compile`` — compile a model and write program.bin / program.asm.
* ``simulate`` — run the cycle-approximate simulation end to end.
* ``serve`` — multi-shard batch serving over synthetic traffic.
* ``cache`` — inspect (``info``) or ``compact`` a ``--cache-dir``.
* ``emit-hls`` — write the HLS project for a DSE-selected design.
* ``experiments`` — regenerate a paper table/figure by name.

All model-evaluating commands share one
:class:`~repro.pipeline.session.PipelineSession`, so the DSE result,
compiled model and runtime are each computed once per invocation.
With ``--cache-dir`` the session is backed by an on-disk
:class:`~repro.pipeline.store.EvaluationStore`: layer estimates warm
from disk at startup and the newly computed delta is flushed when the
command finishes, so repeated invocations over the model zoo skip the
analytical model almost entirely.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.compiler import CompilerOptions
from repro.dse.space import ESTIMATORS, EXECUTORS, OBJECTIVES, DseOptions
from repro.errors import ReproError
from repro.estimator import estimate_resources
from repro.fpga import DEVICES, get_device
from repro.hls import HlsConfig, emit_project
from repro.ir import zoo
from repro.isa import disassemble
from repro.pipeline import EvaluationStore, PipelineSession


def _cmd_devices(_args) -> int:
    for name in sorted(DEVICES):
        print(f"{name:10s} {DEVICES[name]}")
    return 0


def _cmd_models(_args) -> int:
    for name in sorted(zoo.MODELS):
        net = zoo.get_model(name)
        print(
            f"{name:12s} {len(net)} layers, "
            f"{net.total_macs / 1e9:.2f} GMACs, input {net.input_shape}"
        )
    return 0


def _session(args) -> PipelineSession:
    """One shared pipeline session for the model-evaluating commands.

    Model / device specs are resolved by the session itself (zoo name or
    JSON path, catalog name).
    """
    options = DseOptions(
        objective=args.objective,
        max_instances=args.max_instances,
        top_k=getattr(args, "top_k", 5),
        jobs=getattr(args, "jobs", 1),
        executor=getattr(args, "executor", "serial"),
        estimator=getattr(args, "estimator", "scalar"),
    )
    return PipelineSession(
        args.model,
        get_device(args.device),
        options,
        compiler_options=CompilerOptions(quantize=not args.exact),
        seed=args.seed,
        store=args.cache_dir,
    )


def _cmd_dse(args) -> int:
    with _session(args) as session:
        result = session.dse()
        print(result.summary())
        util = result.total.utilisation(session.device.resources)
        print("utilisation: " + ", ".join(
            f"{k} {v * 100:.1f}%" for k, v in util.items()
        ))
        if args.verbose:
            print("\nper-layer mapping:")
            for m in result.mapping:
                print(f"  {m.layer_name:14s} {m.mode}-{m.dataflow}")
            print(
                f"\nevaluated {result.candidates_evaluated}, pruned "
                f"{result.candidates_pruned} of "
                f"{result.candidates_considered} candidates"
            )
            if result.cache_stats is not None:
                print(f"cache: {result.cache_stats.describe()}")
            if session.store is not None:
                session.close()  # flush before reporting the counters
                print(session.store.describe())
    return 0


def _cmd_compile(args) -> int:
    with _session(args) as session:
        compiled = session.compiled()
    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    for index, program in enumerate(compiled.programs()):
        stem = f"program{index}" if index else "program"
        program.save(out / f"{stem}.bin")
        (out / f"{stem}.asm").write_text(disassemble(program))
    print(
        f"wrote {compiled.total_instructions} instructions across "
        f"{len(compiled.programs())} segment(s) to {out}"
    )
    return 0


def _cmd_simulate(args) -> int:
    with _session(args) as session:
        network = session.network
        sim = session.simulate(functional=args.functional)
    ops = sum(i.ops for i in network.compute_layers())
    print(
        f"{network.name} on {session.device.name}: "
        f"{sim.seconds * 1e3:.2f} ms/image/instance, "
        f"{ops / sim.seconds / 1e9 * session.cfg.instances:.1f} GOPS "
        f"aggregate, {sim.instructions} instructions"
    )
    for name, stats in sim.modules.items():
        print(f"  {name:9s} {stats.utilisation(sim.cycles) * 100:5.1f}% busy")
    return 0


def _serve_session(args) -> PipelineSession:
    """The session one shard pool replicates.

    Defaults to the paper's pinned Section-6.1 configuration when the
    device has one (fast, and the config Table 4 reports); ``--dse``,
    an explicit DSE knob (``--objective`` / ``--max-instances``), or a
    device without a paper config runs the full DSE instead — a pinned
    configuration must never silently override what the user asked the
    DSE to optimise.
    """
    from repro.errors import DeviceError
    from repro.experiments.common import paper_config

    compiler_options = CompilerOptions(quantize=not args.exact,
                                       pack_data=False)
    wants_dse = args.dse or (
        args.objective != "throughput" or args.max_instances is not None
    )
    if wants_dse and not args.dse:
        print("DSE knobs given (--objective/--max-instances): running "
              "the DSE instead of the paper configuration")
    if not wants_dse:
        try:
            cfg, device = paper_config(args.device)
            return PipelineSession(
                args.model, device, cfg=cfg,
                compiler_options=compiler_options,
                seed=args.seed, store=args.cache_dir,
            )
        except DeviceError:
            pass  # no paper config for this device: fall back to DSE
    options = DseOptions(
        objective=args.objective,
        max_instances=args.max_instances,
    )
    return PipelineSession(
        args.model, get_device(args.device), options,
        compiler_options=compiler_options,
        seed=args.seed, store=args.cache_dir,
    )


def _parse_autoscale(args):
    """``--autoscale min:max`` (+ targets) -> bounds or ``None``.

    Only the cheap spec parsing happens here — the options object
    needs pool-derived defaults (tick/warm-up from the batch service
    time), so it is built in :func:`_autoscale_options` after the
    session is paid for.
    """
    from repro.errors import ServingError

    if args.autoscale is None:
        if args.target_util is not None or args.target_p99 is not None:
            raise ServingError(
                "--target-util/--target-p99 need --autoscale min:max"
            )
        return None
    head, sep, tail = args.autoscale.partition(":")
    try:
        bounds = (int(head), int(tail)) if sep else (int(head), int(head))
    except ValueError:
        raise ServingError(
            f"--autoscale expects min:max shard counts, "
            f"got {args.autoscale!r}"
        ) from None
    if bounds[0] < 1 or bounds[0] > bounds[1]:
        raise ServingError(
            f"--autoscale bounds must satisfy 1 <= min <= max, "
            f"got {bounds[0]}:{bounds[1]}"
        )
    targets = (args.target_util, args.target_p99)
    if sum(t is not None for t in targets) != 1:
        raise ServingError(
            "--autoscale needs exactly one of --target-util "
            "and --target-p99"
        )
    if args.scenario:
        raise ServingError(
            "--autoscale and --scenario both drive shard up/down "
            "events; run them separately"
        )
    return bounds


def _autoscale_options(args, bounds, pool, max_batch):
    """Autoscaler options with pool-derived timescale defaults."""
    from repro.serving import AutoscalerOptions

    # One batch service time on the fastest shard: the natural control
    # timescale of this pool.
    batch_s = min(
        shard.probe_service_seconds(max_batch) for shard in pool
    )
    warmup_s = (
        args.warmup * 1e-3 if args.warmup is not None else batch_s
    )
    tick_s = (
        args.autoscale_tick * 1e-3
        if args.autoscale_tick is not None else batch_s
    )
    if args.warmup is None:
        print(f"warmup not given: using {warmup_s * 1e3:.2f} ms "
              "(one batch service time)")
    return AutoscalerOptions(
        min_shards=bounds[0],
        max_shards=bounds[1],
        target_utilisation=args.target_util,
        target_p99_s=(
            args.target_p99 * 1e-3 if args.target_p99 is not None else None
        ),
        warmup_s=warmup_s,
        tick_s=tick_s,
        cooldown_s=(
            args.cooldown * 1e-3 if args.cooldown is not None else None
        ),
    )


def _cmd_serve(args) -> int:
    from repro.errors import ServingError
    from repro.serving import (
        ShardPool,
        SloOptions,
        parse_scenario,
        parse_tenants,
    )

    # Parse the cheap, error-prone options before paying for the
    # session: a bad spec should fail before DSE/compilation.  The
    # chaos grammar is a superset of the legacy kill/restore one, and
    # legacy specs compile to event-identical runs (the oracle tests).
    scenario = (
        parse_scenario(args.scenario, seed=args.seed)
        if args.scenario else None
    )
    _parse_serve_shapes(args)
    slo = (
        SloOptions(p99_target_s=args.slo_p99 * 1e-3,
                   action=args.slo_action)
        if args.slo_p99 is not None else None
    )
    tenants = parse_tenants(args.tenant) if args.tenant else None
    if args.strict_slo and slo is None and not (
        tenants is not None and tenants.slo_targets()
    ):
        raise ServingError(
            "--strict-slo needs a target to enforce: pass --slo-p99 "
            "and/or a --tenant with :p99="
        )
    autoscale_bounds = _parse_autoscale(args)
    session = _serve_session(args)
    shards = args.shards
    if autoscale_bounds is not None:
        shards = autoscale_bounds[1]  # replicate the pool to max
    pool = ShardPool.replicate(session, shards)
    try:
        return _run_serve(
            args, pool, scenario, slo, autoscale_bounds, tenants
        )
    finally:
        # Always flush a store-backed session, even when the serve run
        # itself fails (e.g. a scenario naming an unknown shard) — the
        # DSE/compile work is already paid and worth persisting.
        pool.close()


def _parse_serve_shapes(args):
    """Validate ``--shape`` specs early and reject unusable combos."""
    from repro.errors import ServingError
    from repro.serving import parse_shape

    shapes = [parse_shape(spec) for spec in (args.shape or [])]
    if shapes and args.closed_loop is not None:
        raise ServingError(
            "--shape warps pre-materialised arrivals; closed-loop "
            "arrivals depend on completions, so there is nothing to "
            "warp — drop --shape or --closed-loop"
        )
    return shapes


def _write_profile(profiler, path, top: int = 25) -> None:
    """Dump the ``top`` cumulative-time rows of a cProfile run as JSON.

    The tuple layout mirrors ``pstats``: stats map
    ``(file, line, func) -> (primitive calls, ncalls, tottime,
    cumtime, callers)``.  Rows are ordered by descending cumulative
    time with the location as a deterministic tie-break.
    """
    import json
    import pstats

    stats = pstats.Stats(profiler)
    rows = [
        {
            "function": func,
            "file": file,
            "line": line,
            "ncalls": ncalls,
            "primitive_calls": primitive,
            "tottime": tottime,
            "cumtime": cumtime,
        }
        for (file, line, func), (primitive, ncalls, tottime, cumtime, _)
        in stats.stats.items()
    ]
    rows.sort(key=lambda row: (-row["cumtime"], row["file"],
                               row["line"], row["function"]))
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(rows[:top], indent=2) + "\n")


def _run_serve(
    args, pool, scenario, slo, autoscale_bounds=None, tenants=None
) -> int:
    from repro.serving import (
        BatcherOptions,
        ClosedLoopClientPool,
        Request,
        ShardServer,
        TraceSource,
        WorkloadSpec,
        analytical_reference,
        assign_tenants,
        make_requests,
        shape_arrivals,
        shaped_trace,
    )

    shapes = _parse_serve_shapes(args)
    if args.trace is not None:
        if args.closed_loop is not None:
            from repro.errors import ServingError

            raise ServingError(
                "--trace and --closed-loop are both complete traffic "
                "sources; pick one"
            )
        traffic = TraceSource.load(
            args.trace, time_scale=args.trace_scale, loop=args.trace_loop
        )
        if shapes:
            traffic = shaped_trace(traffic, shapes)
        traffic_label = traffic.describe()
    elif args.closed_loop is not None:
        # Closed loop: N clients, each re-issuing one think time after
        # its previous request completes — arrivals depend on
        # completions, so qps is an outcome, not an input.
        traffic = ClosedLoopClientPool(
            clients=args.closed_loop,
            requests=args.requests,
            think_time_s=args.think_time * 1e-3,
            distribution=args.think_dist,
            seed=args.seed,
            tenants=tenants,
        )
        traffic_label = (
            f"closed-loop: {args.closed_loop} clients, "
            f"{args.think_time:.1f} ms {args.think_dist} think"
        )
    else:
        qps = args.qps
        if qps is None and args.traffic != "uniform":
            # Auto-saturate: 2x the pool's analytical service rate
            # keeps every shard busy without drowning the tail in
            # queueing delay.
            qps = 2.0 * pool.capacity_images_per_second()
            print(f"qps not given: saturating at {qps:.1f} req/s "
                  "(2x analytical pool capacity)")
        traffic = make_requests(
            args.traffic, args.requests, qps=qps, seed=args.seed,
            burst=args.burst,
        )
        traffic_label = f"{args.traffic} traffic"
        if shapes:
            warped = shape_arrivals(
                [request.arrival for request in traffic], shapes
            )
            traffic = [
                Request(index=request.index, arrival=arrival)
                for request, arrival in zip(traffic, warped)
            ]
            traffic_label += " + " + ", ".join(
                shape.describe() for shape in shapes
            )
        if tenants is not None:
            # Weight-proportional interleaved tagging keeps the
            # arrival sequence itself unchanged.
            traffic = assign_tenants(traffic, tenants)
    max_batch = args.max_batch
    if max_batch is None:
        # A batch occupies one shard's NI batch-parallel instances, so
        # the natural batch size is the (largest) instance count: a
        # bigger batch serialises extra rounds, a smaller one idles
        # instances.
        max_batch = max(shard.instances for shard in pool)
        print(f"max-batch not given: using {max_batch} "
              "(shard instance count)")
    autoscale = (
        _autoscale_options(args, autoscale_bounds, pool, max_batch)
        if autoscale_bounds is not None else None
    )
    spec = WorkloadSpec(
        traffic=traffic,
        policy=args.policy,
        batcher=BatcherOptions(max_batch=max_batch,
                               max_wait_s=args.max_wait_ms * 1e-3),
        tenants=tenants,
        slo=slo,
        autoscale=autoscale,
        scenario=scenario,
        engine=args.engine,
        max_events=args.event_budget,
    )
    server = ShardServer(pool)
    profile = getattr(args, "profile", None)
    if profile is not None:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            report = server.run(spec)
        finally:
            profiler.disable()
        _write_profile(profiler, Path(profile))
        print(f"profile written to {profile}")
    else:
        report = server.run(spec)
    print(f"pool ({args.policy}, {traffic_label}):")
    print(pool.describe())
    if scenario is not None:
        print(f"scenario: {scenario.describe()}")
    print()
    print(report.describe())
    print(f"  engine: {server.last_engine}")
    if server.last_slo_controller is not None:
        print(f"  {server.last_slo_controller.describe()}")
    if server.last_autoscaler is not None:
        print(f"  {server.last_autoscaler.describe()}")
    if (
        args.closed_loop is None and scenario is None and slo is None
        and autoscale is None and args.trace is None
        and tenants is None
    ):
        # The BatchRunner cross-check only measures the same quantity
        # when every request is served on the full pool.
        reference = analytical_reference(pool, args.requests)
        reference_gops = report.total_ops / reference / 1e9
        ratio = report.throughput_gops / reference_gops
        print(
            f"  BatchRunner analytical reference: "
            f"{reference_gops:.1f} GOPS "
            f"(serve/reference = {ratio:.3f})"
        )
    if args.report_json is not None:
        import json

        out = Path(args.report_json)
        out.parent.mkdir(parents=True, exist_ok=True)
        payload = {**report.to_dict(), "engine": server.last_engine}
        out.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"report written to {out}")
    if getattr(args, "strict_slo", False):
        misses = _slo_misses(report, slo)
        if misses:
            for miss in misses:
                print(f"STRICT-SLO MISS: {miss}")
            return 1
        print("strict-slo: all latency targets met")
    return 0


def _slo_misses(report, slo) -> list:
    """Every way this run missed a latency target (empty = all met).

    Covers the degenerate case the report's describe() now calls out:
    when *every* request was shed there are no completions, so the p99
    was never evaluated — under ``--strict-slo`` that counts as a miss,
    not a silent pass.
    """
    misses = []
    if slo is not None:
        if not report.records:
            if report.shed:
                misses.append(
                    "all requests shed: the global p99 target "
                    f"{slo.p99_target_s * 1e3:.2f} ms was never "
                    "evaluated"
                )
        elif report.latency_percentile(99) > slo.p99_target_s:
            misses.append(
                f"global p99 "
                f"{report.latency_percentile(99) * 1e3:.2f} ms > "
                f"target {slo.p99_target_s * 1e3:.2f} ms"
            )
    for name, target in sorted(report.tenant_slo_targets.items()):
        breakdown = report.per_tenant().get(name)
        if breakdown is None or breakdown.issued == 0:
            continue
        if breakdown.count == 0:
            misses.append(
                f"tenant {name}: every issued request shed, p99 "
                f"target {target * 1e3:.2f} ms never evaluated"
            )
        elif breakdown.p99_latency_s > target:
            misses.append(
                f"tenant {name}: p99 "
                f"{breakdown.p99_latency_s * 1e3:.2f} ms > target "
                f"{target * 1e3:.2f} ms"
            )
    return misses


def _cmd_sweep(args) -> int:
    from repro.serving import SweepGrid, SweepOptions, run_sweep

    # Grid construction validates every scenario spec and policy name,
    # so a bad sweep fails here — before the session pays for
    # DSE/compilation, and before any worker process spawns.
    grid = SweepGrid(
        scenarios=_split_specs(args.scenarios, ";", "--scenarios"),
        policies=_split_specs(args.policies, ",", "--policies"),
        pool_sizes=_parse_pools(args.pools),
    )
    options = SweepOptions(
        executor=args.executor,
        jobs=args.jobs,
        requests=args.requests,
        traffic=args.traffic,
        load_factor=args.load_factor,
        burst=args.burst,
        max_batch=args.max_batch,
        max_wait_s=args.max_wait_ms * 1e-3,
        slo_p99_s=(
            args.slo_p99 * 1e-3 if args.slo_p99 is not None else None
        ),
        slo_action=args.slo_action,
        shapes=tuple(args.shape or ()),
        trace=args.trace,
        trace_scale=args.trace_scale,
        trace_loop=args.trace_loop,
        event_budget=args.event_budget,
    )
    session = _serve_session(args)
    try:
        report = run_sweep(session, grid, options, seed=args.seed)
    finally:
        session.close()
    print(report.describe())
    if args.report_json is not None:
        out = Path(args.report_json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(report.to_json() + "\n")
        print(f"report written to {out}")
    return 0


def _cmd_plan(args) -> int:
    from repro.planning import PlanOptions, plan_capacity

    options = PlanOptions(
        slo_p99_s=args.slo_p99 * 1e-3,
        rate=args.rate,
        requests=args.requests,
        traffic=args.traffic,
        burst=args.burst,
        trace=args.trace,
        trace_scale=args.trace_scale,
        trace_loop=args.trace_loop,
        top_k=args.top_k,
        executor=args.executor,
        jobs=args.jobs,
        policy=args.policy,
        max_wait_s=(
            args.max_wait_ms * 1e-3
            if args.max_wait_ms is not None else None
        ),
        batch_options=tuple(args.batch) if args.batch else None,
        seed=args.seed,
        event_budget=args.event_budget,
    )
    plan = plan_capacity(
        args.model, args.devices, options, store=args.cache_dir
    )
    print(plan.describe())
    if args.report_json is not None:
        out = Path(args.report_json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(plan.to_json(indent=2) + "\n")
        print(f"report written to {out}")
    return 0


def _split_specs(raw, separator, flag):
    """Split a CLI list flag, rejecting the empty list early."""
    from repro.errors import ServingError

    specs = [spec.strip() for spec in raw.split(separator)]
    specs = [spec for spec in specs if spec]
    if not specs:
        raise ServingError(f"{flag} must list at least one entry")
    return specs


def _parse_pools(raw):
    from repro.errors import ServingError

    try:
        return [int(spec) for spec in _split_specs(raw, ",", "--pools")]
    except ValueError:
        raise ServingError(
            f"--pools expects comma-separated shard counts, got {raw!r}"
        ) from None


def _cmd_cache_info(args) -> int:
    store = EvaluationStore(args.dir)
    summaries, estimates, partitions = store.inspect()
    if not summaries:
        print(f"cache dir {store.path}: empty (no segments)")
        return 0
    stored = sum(s.entries for s in summaries if s.readable)
    unreadable = sum(1 for s in summaries if not s.readable)
    size = sum(s.size_bytes for s in summaries)
    # A warm load serves exactly the first-writer-wins merge `inspect`
    # already computed — `unique` entries of the `stored` total.
    unique = len(estimates) + len(partitions)
    print(
        f"cache dir {store.path}: {len(summaries)} segment(s), "
        f"{size / 1024:.1f} KiB"
    )
    print(
        f"  {len(estimates)} estimate + {len(partitions)} partition "
        f"entries ({unique} unique of {stored} stored)"
    )
    print(
        f"  warm load: {unique} entries into a fresh cache "
        f"({unique / stored * 100:.1f}% of stored entries useful)"
        if stored else "  warm load: nothing readable"
    )
    if unreadable:
        print(f"  {unreadable} unreadable segment(s) skipped")
    if len(summaries) > 1:
        print(f"  `repro cache compact {args.dir}` would merge "
              f"{len(summaries)} segments into 1")
    return 0


def _cmd_cache_compact(args) -> int:
    store = EvaluationStore(args.dir)
    before = len(store.segments())
    removed = store.compact()
    if removed == 0:
        print(f"cache dir {store.path}: nothing to compact "
              f"({before} segment(s))")
        return 0
    _, estimates, partitions = store.inspect()
    print(
        f"cache dir {store.path}: merged {removed} segments into 1 "
        f"({len(estimates)} estimate + {len(partitions)} partition "
        "entries)"
    )
    return 0


def _cmd_emit_hls(args) -> int:
    with _session(args) as session:
        files = emit_project(
            HlsConfig.from_config(
                session.cfg, session.device, session.network.name
            ),
            args.output,
        )
    resources = estimate_resources(
        session.cfg, session.device, session.calibration
    )
    print(f"design: {session.cfg.describe()}")
    print(f"estimated resources: {resources}")
    for name, path in files.items():
        print(f"wrote {name}: {path}")
    return 0


def _cmd_experiments(args) -> int:
    from repro.experiments import (
        ablation,
        autoscale_study,
        chaos_study,
        estimation_error,
        instruction_stats,
        overhead,
        planning_study,
        roofline_study,
        scalability,
        scenario_study,
        serving_study,
        table3,
        table4,
        tenants_study,
        vgg16_case,
    )
    from repro.experiments import figure6 as fig6

    registry = {
        "table3": table3.main,
        "table4": table4.main,
        "figure6": lambda: (fig6.main("vu9p"), fig6.main("pynq-z1")),
        "estimation-error": estimation_error.main,
        "overhead": overhead.main,
        "vgg16-case": vgg16_case.main,
        "ablation": ablation.main,
        "scalability": scalability.main,
        "roofline": roofline_study.main,
        "instruction-stats": instruction_stats.main,
        "serving": lambda: serving_study.main(seed=args.seed),
        "scenarios": lambda: scenario_study.main(seed=args.seed),
        "autoscale": lambda: autoscale_study.main(seed=args.seed),
        "chaos": lambda: chaos_study.main(seed=args.seed),
        "plan": lambda: planning_study.main(seed=args.seed),
        "tenants": lambda: tenants_study.main(
            seed=args.seed, report_json=args.report_json
        ),
    }
    if args.name not in registry:
        print(f"unknown experiment {args.name!r}; "
              f"available: {sorted(registry)}", file=sys.stderr)
        return 2
    registry[args.name]()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HybridDNN reproduction command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="list FPGA catalog").set_defaults(
        func=_cmd_devices
    )
    sub.add_parser("models", help="list model zoo").set_defaults(
        func=_cmd_models
    )

    def add_common(p):
        p.add_argument("--device", default="pynq-z1",
                       help="FPGA catalog name")
        p.add_argument("--model", default="vgg16",
                       help="zoo model name or model JSON path")
        p.add_argument("--objective", default="throughput",
                       choices=OBJECTIVES)
        p.add_argument("--max-instances", type=int, default=None)
        p.add_argument("--seed", type=int, default=2020)
        p.add_argument("--exact", action="store_true",
                       help="disable fixed-point quantisation")
        p.add_argument("--cache-dir", default=None, dest="cache_dir",
                       help="persist layer estimates here across "
                            "invocations (warm start + flush on exit)")

    p = sub.add_parser("dse", help="run design space exploration")
    add_common(p)
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel candidate evaluations")
    p.add_argument("--executor", default="serial",
                   choices=EXECUTORS,
                   help="evaluation backend for --jobs > 1 "
                        "(process scales on GIL builds)")
    p.add_argument("--estimator", default="scalar", choices=ESTIMATORS,
                   help="candidate evaluation backend: the scalar "
                        "per-layer model or the numpy batch model "
                        "(same selection, faster sweeps)")
    p.add_argument("--top-k", type=int, default=5, dest="top_k",
                   help="number of ranked designs to keep")
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=_cmd_dse)

    p = sub.add_parser("compile", help="compile to instruction stream")
    add_common(p)
    p.add_argument("-o", "--output", default="build")
    p.set_defaults(func=_cmd_compile)

    p = sub.add_parser("simulate", help="simulate end to end")
    add_common(p)
    p.add_argument("--functional", action="store_true",
                   help="move real data (slower)")
    p.set_defaults(func=_cmd_simulate)

    from repro.serving.scheduler import POLICIES
    from repro.serving.traffic import TRAFFIC_MODELS

    p = sub.add_parser(
        "serve", help="multi-shard batch serving over synthetic traffic"
    )
    add_common(p)
    p.add_argument("--shards", type=int, default=2,
                   help="identical shards replicated from one session")
    p.add_argument("--policy", default="round-robin", choices=POLICIES)
    p.add_argument("--traffic", default="uniform", choices=TRAFFIC_MODELS)
    p.add_argument("--requests", type=int, default=64,
                   help="synthetic requests to serve")
    p.add_argument("--qps", type=float, default=None,
                   help="arrival rate for open-loop traffic "
                        "(default: 2x pool capacity)")
    p.add_argument("--burst", type=int, default=8,
                   help="burst size for --traffic burst")
    p.add_argument("--max-batch", type=int, default=None,
                   dest="max_batch",
                   help="dynamic batcher: max requests per batch "
                        "(default: the shard instance count)")
    p.add_argument("--max-wait-ms", type=float, default=0.0,
                   dest="max_wait_ms",
                   help="dynamic batcher: max wait of the oldest "
                        "queued request")
    p.add_argument("--closed-loop", type=int, default=None,
                   metavar="CLIENTS", dest="closed_loop",
                   help="closed-loop client pool of this many clients "
                        "(--requests bounds the total issued; "
                        "overrides --traffic/--qps)")
    p.add_argument("--think-time", type=float, default=0.0,
                   metavar="MS", dest="think_time",
                   help="closed-loop client think time in ms")
    from repro.serving.traffic import THINK_DISTRIBUTIONS
    p.add_argument("--think-dist", default="fixed",
                   choices=THINK_DISTRIBUTIONS, dest="think_dist",
                   help="closed-loop think-time distribution")
    p.add_argument("--slo-p99", type=float, default=None,
                   metavar="MS", dest="slo_p99",
                   help="latency SLO: target p99 in ms; the controller "
                        "sheds/reroutes while the windowed estimate "
                        "exceeds it")
    from repro.serving.slo import SLO_ACTIONS
    p.add_argument("--slo-action", default="shed", choices=SLO_ACTIONS,
                   dest="slo_action",
                   help="what to do while the SLO is breached")
    p.add_argument("--strict-slo", action="store_true",
                   dest="strict_slo",
                   help="exit nonzero when a latency SLO (global or "
                        "per-tenant) is missed — including the "
                        "degenerate all-requests-shed case")
    p.add_argument("--tenant", action="append", default=None,
                   metavar="SPEC",
                   help="register a tenant; repeatable.  SPEC is "
                        "NAME[:weight=W][:tier=interactive|batch]"
                        "[:p99=MS][:cap=N].  Open-loop traffic is "
                        "split across tenants by weight; traces tag "
                        "via their 'tenant' column; closed-loop "
                        "clients split into per-tenant groups")
    p.add_argument("--scenario", default=None,
                   help="chaos scenario (virtual seconds), e.g. "
                        "'kill:shard0@0.05,restore@0.12', "
                        "'degrade:shard0@0.01..0.05x4', "
                        "'outage:shard0+shard1@0.02..0.04', "
                        "'stragglers:shard0+shard1@0..0.1x3*4'")
    p.add_argument("--shape", action="append", default=None,
                   metavar="SPEC",
                   help="warp open-loop/trace arrivals by a traffic "
                        "shape; repeatable, e.g. 'diurnal:0.5x0.2' or "
                        "'flash:3@0.05~0.01'")
    p.add_argument("--autoscale", default=None, metavar="MIN:MAX",
                   help="elastic pool bounds; the pool is replicated "
                        "to MAX and the autoscaler drives it against "
                        "--target-util or --target-p99 "
                        "(--shards is ignored)")
    p.add_argument("--target-util", type=float, default=None,
                   metavar="FRACTION", dest="target_util",
                   help="autoscaler target: windowed busy fraction "
                        "of the active shards, in (0, 1]")
    p.add_argument("--target-p99", type=float, default=None,
                   metavar="MS", dest="target_p99",
                   help="autoscaler target: windowed p99 latency in ms")
    p.add_argument("--warmup", type=float, default=None, metavar="MS",
                   help="modeled warm-up of a scaled-up shard "
                        "(default: one batch service time)")
    p.add_argument("--cooldown", type=float, default=None, metavar="MS",
                   help="min time between scale decisions "
                        "(default: two autoscaler ticks)")
    p.add_argument("--autoscale-tick", type=float, default=None,
                   metavar="MS", dest="autoscale_tick",
                   help="autoscaler control period "
                        "(default: one batch service time)")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="replay a CSV/JSONL arrival trace instead of "
                        "synthetic traffic (--requests is ignored)")
    p.add_argument("--trace-scale", type=float, default=1.0,
                   metavar="FACTOR", dest="trace_scale",
                   help="multiply trace inter-arrivals by this "
                        "(< 1 replays faster)")
    p.add_argument("--trace-loop", type=int, default=1, metavar="N",
                   dest="trace_loop",
                   help="repeat the trace N times back to back")
    p.add_argument("--report-json", default=None, metavar="PATH",
                   dest="report_json",
                   help="also write the ServingReport as JSON "
                        "(the CI artifact format)")
    p.add_argument("--event-budget", type=int, default=None,
                   metavar="N", dest="event_budget",
                   help="kernel runaway-loop budget (default 1M); "
                        "raise for large replays (~3 events/request)")
    from repro.serving.server import ENGINES
    p.add_argument("--engine", default="auto", choices=ENGINES,
                   help="replay engine: 'auto' fast-forwards eligible "
                        "plain open-loop runs, 'kernel' forces the "
                        "event kernel, 'fastforward' errors if the "
                        "run is ineligible")
    p.add_argument("--profile", default=None, metavar="PATH",
                   help="cProfile the serve and write the top-25 "
                        "cumulative-time stats to PATH as JSON")
    p.add_argument("--dse", action="store_true",
                   help="run the DSE instead of the paper configuration")
    p.set_defaults(func=_cmd_serve)

    from repro.serving.sweep import SWEEP_EXECUTORS

    p = sub.add_parser(
        "sweep",
        help="seeded scenario x policy x pool chaos grid, optionally "
             "across worker processes",
    )
    add_common(p)
    p.add_argument("--scenarios",
                   default="none;kill:shard0@0.005,restore@0.02",
                   help="';'-separated chaos specs ('none' = baseline; "
                        "specs use ',' internally)")
    p.add_argument("--policies", default="round-robin,least-loaded",
                   help="comma-separated scheduling policies")
    p.add_argument("--pools", default="2,3",
                   help="comma-separated shard pool sizes")
    p.add_argument("--requests", type=int, default=48,
                   help="open-loop requests per cell")
    p.add_argument("--traffic", default="poisson",
                   choices=TRAFFIC_MODELS)
    p.add_argument("--load-factor", type=float, default=1.5,
                   dest="load_factor",
                   help="arrival rate as a multiple of each cell "
                        "pool's simulated service rate")
    p.add_argument("--burst", type=int, default=8,
                   help="burst size for --traffic burst")
    p.add_argument("--max-batch", type=int, default=None,
                   dest="max_batch",
                   help="dynamic batcher: max requests per batch "
                        "(default: the shard instance count)")
    p.add_argument("--max-wait-ms", type=float, default=0.0,
                   dest="max_wait_ms",
                   help="dynamic batcher: max wait of the oldest "
                        "queued request")
    p.add_argument("--slo-p99", type=float, default=None,
                   metavar="MS", dest="slo_p99",
                   help="attainment target p99 in ms (default: 4 "
                        "batch service times per cell)")
    p.add_argument("--slo-action", default=None, choices=SLO_ACTIONS,
                   dest="slo_action",
                   help="arm an SLO controller in every cell "
                        "(default: observe only)")
    p.add_argument("--shape", action="append", default=None,
                   metavar="SPEC",
                   help="warp every cell's arrivals by a traffic "
                        "shape (composes onto --trace replays too); "
                        "repeatable")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="replay a recorded arrival trace in every "
                        "cell instead of synthetic traffic (ignores "
                        "--requests/--traffic/--load-factor/--burst)")
    p.add_argument("--trace-scale", type=float, default=1.0,
                   dest="trace_scale", metavar="FACTOR",
                   help="multiply trace inter-arrival times "
                        "(0.5 = replay twice as fast)")
    p.add_argument("--trace-loop", type=int, default=1,
                   dest="trace_loop", metavar="N",
                   help="repeat the trace N times back to back")
    p.add_argument("--executor", default="serial",
                   choices=SWEEP_EXECUTORS,
                   help="cell execution backend for --jobs > 1; both "
                        "executors produce byte-identical reports")
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel worker processes")
    p.add_argument("--event-budget", type=int, default=None,
                   metavar="N", dest="event_budget",
                   help="per-cell kernel runaway-loop budget")
    p.add_argument("--report-json", default=None, metavar="PATH",
                   dest="report_json",
                   help="write the SweepReport as JSON "
                        "(the CI artifact format)")
    p.add_argument("--dse", action="store_true",
                   help="run the DSE instead of the paper configuration")
    p.set_defaults(func=_cmd_sweep)

    from repro.planning import PLAN_EXECUTORS

    p = sub.add_parser(
        "plan",
        help="two-tier fleet capacity planning: vectorized analytic "
             "scoring of the whole plan grid, event-kernel replay of "
             "the finalists",
    )
    p.add_argument("--model", default="vgg16",
                   help="zoo model name or model JSON path")
    p.add_argument("--devices", default="vu9p:0..4+pynq-z1:0..8",
                   help="fleet spec: '+'-separated "
                        "<device>:<min..max>[@weight] kinds "
                        "(weight defaults to the config's instance "
                        "count)")
    p.add_argument("--slo-p99", type=float, required=True,
                   metavar="MS", dest="slo_p99",
                   help="the SLO every plan must meet: target p99 "
                        "latency in ms")
    p.add_argument("--rate", type=float, default=None,
                   help="synthetic arrival rate in req/s (exactly one "
                        "of --rate / --trace)")
    p.add_argument("--requests", type=int, default=96,
                   help="synthetic requests to plan against")
    p.add_argument("--traffic", default="poisson",
                   choices=TRAFFIC_MODELS)
    p.add_argument("--burst", type=int, default=8,
                   help="burst size for --traffic burst")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="plan against a replayed CSV/JSONL arrival "
                        "trace instead of synthetic traffic")
    p.add_argument("--trace-scale", type=float, default=1.0,
                   metavar="FACTOR", dest="trace_scale",
                   help="multiply trace inter-arrivals by this")
    p.add_argument("--trace-loop", type=int, default=1, metavar="N",
                   dest="trace_loop",
                   help="repeat the trace N times back to back")
    p.add_argument("--top-k", type=int, default=5, dest="top_k",
                   help="surrogate survivors to verify by replay")
    p.add_argument("--policy", default="shortest-latency",
                   choices=POLICIES,
                   help="scheduling policy the replays (and the "
                        "recommended deployment) use")
    p.add_argument("--batch", action="append", type=int, default=None,
                   metavar="N",
                   help="candidate pool-wide max_batch (repeatable; "
                        "default: 1, each kind's instance count, and "
                        "2x the largest)")
    p.add_argument("--max-wait-ms", type=float, default=None,
                   metavar="MS", dest="max_wait_ms",
                   help="dynamic batcher: max wait of the oldest "
                        "queued request (default: two service rounds "
                        "of the slowest kind)")
    p.add_argument("--executor", default="serial",
                   choices=PLAN_EXECUTORS,
                   help="Tier B replay backend for --jobs > 1; both "
                        "produce byte-identical reports")
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel replay worker processes")
    p.add_argument("--event-budget", type=int, default=None,
                   metavar="N", dest="event_budget",
                   help="per-replay kernel runaway-loop budget")
    p.add_argument("--seed", type=int, default=2020)
    p.add_argument("--cache-dir", default=None, dest="cache_dir",
                   help="persist layer estimates here across "
                        "invocations (warm start + flush on exit)")
    p.add_argument("--report-json", default=None, metavar="PATH",
                   dest="report_json",
                   help="write the ProvisioningPlan as JSON "
                        "(the CI artifact format)")
    p.set_defaults(func=_cmd_plan)

    p = sub.add_parser("cache",
                       help="inspect / compact an estimate cache dir")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    pc = cache_sub.add_parser(
        "info", help="segment count, entry counts, warm-load dedup"
    )
    pc.add_argument("dir", help="cache directory (--cache-dir elsewhere)")
    pc.set_defaults(func=_cmd_cache_info)
    pc = cache_sub.add_parser(
        "compact", help="merge all segments into one"
    )
    pc.add_argument("dir", help="cache directory (--cache-dir elsewhere)")
    pc.set_defaults(func=_cmd_cache_compact)

    p = sub.add_parser("emit-hls", help="emit the HLS project")
    add_common(p)
    p.add_argument("-o", "--output", default="hls_project")
    p.set_defaults(func=_cmd_emit_hls)

    p = sub.add_parser("experiments", help="regenerate a paper artifact")
    p.add_argument("name", help="table3|table4|figure6|estimation-error|"
                                "overhead|vgg16-case|ablation|serving|"
                                "scenarios|autoscale|chaos|tenants")
    p.add_argument("--seed", type=int, default=2020,
                   help="traffic seed for the serving/scenarios/"
                        "autoscale/chaos/tenants studies")
    p.add_argument("--report-json", default=None, metavar="PATH",
                   dest="report_json",
                   help="tenants study: also write the protected run's "
                        "schema-2 ServingReport as JSON (the CI "
                        "artifact format)")
    p.set_defaults(func=_cmd_experiments)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

"""Baselines for the evaluation.

``published``
    The prior-work data points of Table 4 ([26] TGPA, [4], [6]
    Cloud-DNN), entered verbatim from the paper for comparison rows.
``spatial_only``
    The conventional spatial-only accelerator — same PE array without
    the hybrid (Winograd) support — used for the Section-6.1 overhead
    ablation and as the algorithmic baseline in the Figure-6 sweeps.
"""

from repro.baselines.published import PUBLISHED, PublishedDesign
from repro.baselines.spatial_only import spatial_only_estimate

__all__ = ["PUBLISHED", "PublishedDesign", "spatial_only_estimate"]

"""Published prior-work numbers (Table 4 of the paper).

These are the comparison rows exactly as the paper reports them; they
are *data*, not measurements of our substrate, and are used only to
regenerate Table 4's relative claims (1.8x GOPS, 2.0x energy
efficiency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass(frozen=True)
class PublishedDesign:
    """One prior-work column of Table 4."""

    key: str
    citation: str
    device: str
    model: str
    precision: str
    frequency_mhz: float
    dsps: int
    gops: float
    power_w: Optional[float]

    @property
    def dsp_efficiency(self) -> float:
        """GOPS per DSP."""
        return self.gops / self.dsps if self.dsps else 0.0

    @property
    def energy_efficiency(self) -> Optional[float]:
        """GOPS per watt."""
        if self.power_w is None:
            return None
        return self.gops / self.power_w


PUBLISHED: Tuple[PublishedDesign, ...] = (
    PublishedDesign(
        key="tgpa",
        citation="[26] Wei et al., TGPA (ICCAD 2018)",
        device="Xilinx VU9P",
        model="VGG16",
        precision="16-bit",
        frequency_mhz=210.0,
        dsps=4096,
        gops=1510.0,
        power_w=None,
    ),
    PublishedDesign(
        key="opencl-a10",
        citation="[4] Zhang & Li (FPGA 2017)",
        device="Arria10 GX1150",
        model="VGG16",
        precision="16-bit",
        frequency_mhz=385.0,
        dsps=2756,
        gops=1790.0,
        power_w=37.5,
    ),
    PublishedDesign(
        key="cloud-dnn",
        citation="[6] Chen et al., Cloud-DNN (FPGA 2019)",
        device="Xilinx VU9P",
        model="VGG16",
        precision="16-bit",
        frequency_mhz=214.0,
        dsps=5349,
        gops=1828.6,
        power_w=49.3,
    ),
)

#: The paper's own measured results for context in reports.
PAPER_RESULTS = {
    "vu9p": PublishedDesign(
        key="hybriddnn-vu9p",
        citation="HybridDNN (this paper), VU9P",
        device="Xilinx VU9P",
        model="VGG16",
        precision="12-bit*",
        frequency_mhz=167.0,
        dsps=5163,
        gops=3375.7,
        power_w=45.9,
    ),
    "pynq-z1": PublishedDesign(
        key="hybriddnn-pynq",
        citation="HybridDNN (this paper), PYNQ-Z1",
        device="PYNQ-Z1",
        model="VGG16",
        precision="12-bit*",
        frequency_mhz=100.0,
        dsps=220,
        gops=83.3,
        power_w=2.6,
    ),
}


def best_prior(device: str = "Xilinx VU9P") -> PublishedDesign:
    """Best published GOPS on ``device`` (the 1.8x comparison point)."""
    rows = [p for p in PUBLISHED if p.device == device]
    if not rows:
        rows = list(PUBLISHED)
    return max(rows, key=lambda p: p.gops)

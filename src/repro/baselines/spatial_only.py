"""Spatial-only conventional accelerator baseline.

Identical PE array and memory system, but the Winograd transform
network, the hybrid load/save managers and the layout reconfiguration
are absent — so every layer runs in Spatial mode.  Used for:

* the Section-6.1 resource-overhead ablation (the paper: hybrid adds
  26.4 % LUTs, zero DSPs on VU9P), and
* the performance ablation showing what the hybrid design buys.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.arch.params import AcceleratorConfig
from repro.errors import DseError, ReproError
from repro.estimator.calibration import CalibrationProfile, get_calibration
from repro.estimator.latency import (
    NetworkEstimate,
    estimate_layer,
    estimate_network,
)
from repro.fpga.device import FpgaDevice
from repro.ir.graph import Network
from repro.mapping.partition import fused_pool_for
from repro.mapping.strategy import LayerMapping, NetworkMapping


def spatial_only_estimate(
    cfg: AcceleratorConfig,
    device: FpgaDevice,
    network: Network,
    cal: Optional[CalibrationProfile] = None,
) -> Tuple[NetworkMapping, NetworkEstimate]:
    """Best mapping with the mode forced to Spatial everywhere.

    Dataflows are still chosen per layer (the baseline keeps IS/WS
    flexibility — only the Winograd path is removed).
    """
    if cal is None:
        cal = get_calibration(device.name)
    selections = []
    for info in network.compute_layers():
        pool = fused_pool_for(network, info.index)
        best = None
        for dataflow in ("is", "ws"):
            try:
                est = estimate_layer(
                    cfg, device, info, "spat", dataflow, cal, pool
                )
            except ReproError:
                continue
            if best is None or est.latency < best[0]:
                best = (est.latency, dataflow)
        if best is None:
            raise DseError(f"{info.layer.name}: no spatial mapping fits")
        selections.append(LayerMapping(info.layer.name, "spat", best[1]))
    mapping = NetworkMapping(network.name, selections)
    estimate = estimate_network(cfg, device, network, mapping, cal)
    return mapping, estimate

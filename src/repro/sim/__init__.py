"""Cycle-approximate, functionally-accurate accelerator simulator.

Substitutes for the paper's FPGA execution (see DESIGN.md).  The
simulator executes compiled :class:`~repro.isa.program.Program` streams
against the four-module architecture of Figure 3:

* per-module in-order execution with handshake-FIFO tokens (Section 4.1),
* DDR bandwidth and port-width limits per Eq. 8-11,
* the actual PE datapath (Winograd transforms included), producing real
  output feature maps that are checked against the numpy reference.

"Real" numbers in the Figure-6 reproduction come from here; "Esti."
numbers come from :mod:`repro.estimator`.
"""

from repro.sim.simulator import (
    AcceleratorSimulator,
    LayerTiming,
    ModuleStats,
    SimulationResult,
)
from repro.sim.trace import (
    TraceRecord,
    module_occupancy,
    render_gantt,
    summarize,
    trace_from_json,
    trace_to_json,
)

__all__ = [
    "AcceleratorSimulator",
    "LayerTiming",
    "ModuleStats",
    "SimulationResult",
    "TraceRecord",
    "module_occupancy",
    "render_gantt",
    "summarize",
    "trace_from_json",
    "trace_to_json",
]

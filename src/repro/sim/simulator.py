"""The accelerator simulator.

Timing model
------------
Instructions are dispatched in program order by the CTRL module (a
4-stage fetch/decode pipeline issuing one instruction every
``CTRL_ISSUE_CYCLES``).  Each functional module executes its own
instructions in order; an instruction starts at::

    max(module free time, CTRL issue time, handshake token times)

and runs for a duration given by the DDR/port transfer model (loads and
saves) or the PE cycle model (COMP).  Handshake tokens carry the
producer's finish timestamp, so producer/consumer overlap emerges
naturally and the makespan reflects the ``max(...)`` structure of
Eq. 12-15 plus all the discretisation the analytical model abstracts
away — the measured few-percent gap between the two reproduces the
paper's estimation-error experiment.

Functional model
----------------
With ``functional=True`` every instruction also moves real data: strips
are gathered from the DRAM image, the PE computes through the
Spatial/Winograd paths of :mod:`repro.arch.pe`, and SAVE applies ReLU /
pooling / re-quantisation and the Figure-5 layout transform before
writing back.  The end-to-end result is compared against the numpy
reference in the integration tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.arch import layouts, pe
from repro.arch.buffers import PingPongBuffer
from repro.arch.dram import ExternalMemoryModel
from repro.arch.fifo import HandshakeFifo
from repro.arch.params import AcceleratorConfig
from repro.fpga.device import FpgaDevice
from repro.isa.instructions import DeptFlag, Opcode
from repro.isa.program import Program
from repro.winograd.reference import max_pool2d

#: CTRL issue interval (cycles per instruction through the 4-stage
#: instruction pipeline).
CTRL_ISSUE_CYCLES = 2

#: DDR burst/setup cycles per transfer (matches the estimator's
#: GROUP_OVERHEAD_CYCLES together with the COMP pipeline depth).
DDR_FIXED_CYCLES = 64


@dataclass
class ModuleStats:
    """Activity of one functional module."""

    name: str
    instructions: int = 0
    busy_cycles: int = 0
    finish_time: int = 0

    def utilisation(self, total_cycles: int) -> float:
        return self.busy_cycles / total_cycles if total_cycles else 0.0


@dataclass
class LayerTiming:
    """Start/finish window of one layer's instruction range."""

    layer_name: str
    mode: str
    dataflow: str
    start_cycle: int
    finish_cycle: int

    @property
    def cycles(self) -> int:
        return self.finish_cycle - self.start_cycle


@dataclass
class SimulationResult:
    """Outcome of one program segment run."""

    cycles: int
    frequency_hz: float
    modules: Dict[str, ModuleStats]
    layers: List[LayerTiming] = field(default_factory=list)
    instructions: int = 0
    dram_read_elems: int = 0
    dram_written_elems: int = 0
    trace: list = field(default_factory=list)

    @property
    def seconds(self) -> float:
        return self.cycles / self.frequency_hz

    def layer(self, name: str) -> LayerTiming:
        for timing in self.layers:
            if timing.layer_name == name:
                return timing
        raise KeyError(f"no layer {name!r} in simulation result")

    @staticmethod
    def merge(results: List["SimulationResult"]) -> "SimulationResult":
        """Aggregate sequential segment results (host steps take no
        accelerator time)."""
        if not results:
            raise SimulationError("nothing to merge")
        total = SimulationResult(
            cycles=sum(r.cycles for r in results),
            frequency_hz=results[0].frequency_hz,
            modules={},
            instructions=sum(r.instructions for r in results),
            dram_read_elems=sum(r.dram_read_elems for r in results),
            dram_written_elems=sum(r.dram_written_elems for r in results),
        )
        offset = 0
        for result in results:
            for name, stats in result.modules.items():
                agg = total.modules.setdefault(name, ModuleStats(name))
                agg.instructions += stats.instructions
                agg.busy_cycles += stats.busy_cycles
            for timing in result.layers:
                total.layers.append(
                    LayerTiming(
                        timing.layer_name,
                        timing.mode,
                        timing.dataflow,
                        timing.start_cycle + offset,
                        timing.finish_cycle + offset,
                    )
                )
            if result.trace:
                from repro.sim.trace import TraceRecord

                base = len(total.trace)
                total.trace.extend(
                    TraceRecord(
                        index=base + record.index,
                        opcode=record.opcode,
                        module=record.module,
                        start=record.start + offset,
                        finish=record.finish + offset,
                    )
                    for record in result.trace
                )
            offset += result.cycles
        return total


class AcceleratorSimulator:
    """Simulate one accelerator instance.

    Parameters
    ----------
    cfg:
        Hardware configuration (PI/PO/PT, buffer depths, instances — the
        instance count only divides the DRAM bandwidth share).
    device:
        FPGA platform (frequency and memory system).
    dram:
        The external-memory image (regions must be populated by the
        runtime before running).
    functional:
        Move and compute real data (True) or timing only (False).
    """

    def __init__(
        self,
        cfg: AcceleratorConfig,
        device: FpgaDevice,
        dram: ExternalMemoryModel,
        functional: bool = True,
        trace: bool = False,
    ):
        self.cfg = cfg
        self.device = device
        self.dram = dram
        self.functional = functional
        self.trace = trace
        freq = cfg.frequency_hz
        self.bytes_per_cycle = (
            device.memory.bandwidth_bytes / freq / cfg.instances
        )
        self.feature_bytes = max(1, (cfg.data_width + 7) // 8)
        self.weight_bytes = max(1, (cfg.weight_width + 7) // 8)

    # -- timing helpers ---------------------------------------------------

    def _xfer_cycles(self, elems: int, bytes_per_elem: int,
                     port_elems_per_cycle: float) -> int:
        if elems <= 0:
            return DDR_FIXED_CYCLES
        ddr = elems * bytes_per_elem / self.bytes_per_cycle
        port = elems / port_elems_per_cycle
        return int(math.ceil(max(ddr, port))) + DDR_FIXED_CYCLES

    def _comp_cycles(self, desc: dict) -> int:
        kc, cc = desc["k_count"], desc["c_count"]
        if desc["mode"] == "wino":
            n_tiles = -(-desc["out_w"] // self.cfg.m)
            per_block = pe.winograd_cycles(self.cfg, kc, cc, n_tiles)
            return per_block * len(desc["blocks"])
        r, s = desc["kernel"]
        return pe.spatial_cycles(
            self.cfg, kc, cc, r, s, desc["rows_out"], desc["out_w"]
        )

    # -- functional helpers -----------------------------------------------

    def _load_strip(self, desc: dict) -> np.ndarray:
        """Gather one (possibly padded) input strip from DRAM."""
        lanes = self.cfg.pi
        region = self.dram.region(desc["region"])
        channels, height, width = (
            desc["channels"], desc["height"], desc["width"],
        )
        n_cv = layouts.channel_vectors(channels, lanes)
        y0, rows = desc["y_start"], desc["rows"]
        pad_l, pad_r = desc["pad_left"], desc["pad_right"]
        c0, cc = desc["c0"], desc["c_count"]
        cv0 = c0 // lanes
        cvn = -(-cc // lanes)
        strip = np.zeros(
            (cvn * lanes, rows, width + pad_l + pad_r), dtype=np.float64
        )
        y_lo, y_hi = max(0, y0), min(height, y0 + rows)
        if y_hi > y_lo:
            row_words = n_cv * lanes * width
            block = self.dram.read(
                region.base + y_lo * row_words, (y_hi - y_lo) * row_words
            )
            nrows = y_hi - y_lo
            if desc["layout"] == layouts.SPAT:
                arr = block.reshape(nrows, n_cv, width, lanes)
                chunk = arr[:, cv0 : cv0 + cvn].transpose(1, 3, 0, 2)
            else:
                arr = block.reshape(nrows, width, n_cv, lanes)
                chunk = arr[:, :, cv0 : cv0 + cvn].transpose(2, 3, 0, 1)
            chunk = chunk.reshape(cvn * lanes, nrows, width)
            strip[:, y_lo - y0 : y_hi - y0, pad_l : pad_l + width] = chunk
        return strip

    def _store_rows(self, desc: dict, data: np.ndarray) -> None:
        """Read-modify-write output rows into the destination layout."""
        lanes = self.cfg.pi
        region = self.dram.region(desc["region"])
        channels = desc["dst_channels"]
        width = desc["dst_width"]
        n_cv = layouts.channel_vectors(channels, lanes)
        k0 = desc["k0"]
        kc, rows_dst = data.shape[0], data.shape[1]
        y0 = desc["y_dst0"]
        row_words = n_cv * lanes * width
        base = region.base + y0 * row_words
        block = self.dram.read(base, rows_dst * row_words)
        if desc["dst_layout"] == layouts.SPAT:
            arr = block.reshape(rows_dst, n_cv, width, lanes)
            flat = arr.transpose(1, 3, 0, 2).reshape(
                n_cv * lanes, rows_dst, width
            ).copy()
            flat[k0 : k0 + kc] = data[:, :, :width]
            arr = flat.reshape(n_cv, lanes, rows_dst, width).transpose(2, 0, 3, 1)
        else:
            arr = block.reshape(rows_dst, width, n_cv, lanes)
            flat = arr.transpose(2, 3, 0, 1).reshape(
                n_cv * lanes, rows_dst, width
            ).copy()
            flat[k0 : k0 + kc] = data[:, :, :width]
            arr = flat.reshape(n_cv, lanes, rows_dst, width).transpose(2, 3, 0, 1)
        self.dram.write(base, np.ascontiguousarray(arr).reshape(-1))

    # -- main loop -------------------------------------------------------

    def run(self, program: Program) -> SimulationResult:
        """Execute one program segment; returns timing (and, in
        functional mode, leaves the DRAM image updated)."""
        descriptors = program.metadata.get("descriptors")
        if descriptors is None:
            raise SimulationError(
                "program has no descriptors; run a compiler-produced "
                "program (binary round-trips drop host-side metadata)"
            )
        cfg = self.cfg

        fifos = {
            "inp_data": HandshakeFifo("inp_data", depth=2),
            "inp_free": HandshakeFifo("inp_free", depth=2, preload=2),
            "wgt_data": HandshakeFifo("wgt_data", depth=2),
            "wgt_free": HandshakeFifo("wgt_free", depth=2, preload=2),
            "out_data": HandshakeFifo("out_data", depth=2),
            "out_free": HandshakeFifo("out_free", depth=2, preload=2),
        }
        modules = {
            name: ModuleStats(name)
            for name in ("LOAD_INP", "LOAD_WGT", "COMP", "SAVE")
        }
        module_time = {name: 0 for name in modules}
        module_of = {
            Opcode.LOAD_INP: "LOAD_INP",
            Opcode.LOAD_WGT: "LOAD_WGT",
            Opcode.LOAD_BIAS: "LOAD_WGT",
            Opcode.COMP: "COMP",
            Opcode.SAVE: "SAVE",
        }

        if self.functional:
            input_buf = PingPongBuffer("input", cfg.input_buffer_vecs)
            weight_buf = PingPongBuffer("weight", cfg.weight_buffer_vecs)
            output_buf = PingPongBuffer("output", cfg.output_buffer_vecs)
            bias_buf: Optional[np.ndarray] = None
            accum: Optional[np.ndarray] = None

        start_cycle: Dict[int, int] = {}
        finish_cycle: Dict[int, int] = {}
        trace_records = []
        read0 = self.dram.total_read_elems
        written0 = self.dram.total_written_elems

        for idx, inst in enumerate(program):
            desc = descriptors[idx]
            opcode = inst.opcode
            mod = module_of[opcode]
            start = max(module_time[mod], idx * CTRL_ISSUE_CYCLES)
            dept = inst.dept_flag

            # -- token waits ---------------------------------------------
            if opcode in (Opcode.LOAD_INP, Opcode.LOAD_WGT):
                fifo = "inp_free" if opcode == Opcode.LOAD_INP else "wgt_free"
                if dept & DeptFlag.WAIT_FREE:
                    start = max(start, fifos[fifo].pop())
            elif opcode == Opcode.COMP:
                if dept & DeptFlag.WAIT_INP:
                    start = max(start, fifos["inp_data"].pop())
                if dept & DeptFlag.WAIT_WGT:
                    start = max(start, fifos["wgt_data"].pop())
                if dept & DeptFlag.WAIT_FREE:
                    start = max(start, fifos["out_free"].pop())
            elif opcode == Opcode.SAVE:
                if dept & DeptFlag.WAIT_INP:
                    start = max(start, fifos["out_data"].pop())

            # -- duration ---------------------------------------------------
            if opcode == Opcode.LOAD_INP:
                duration = self._xfer_cycles(
                    desc["elems"], self.feature_bytes, cfg.pi * cfg.pt
                )
            elif opcode == Opcode.LOAD_WGT:
                duration = self._xfer_cycles(
                    desc["elems"], self.weight_bytes,
                    cfg.pi * cfg.po * cfg.pt,
                )
            elif opcode == Opcode.LOAD_BIAS:
                duration = self._xfer_cycles(
                    desc["elems"], self.weight_bytes, cfg.po
                )
            elif opcode == Opcode.COMP:
                duration = self._comp_cycles(desc)
            elif opcode == Opcode.SAVE:
                duration = self._xfer_cycles(
                    desc["elems"], self.feature_bytes, cfg.po * cfg.pt
                )
            else:
                raise SimulationError(f"unhandled opcode {opcode}")

            finish = start + duration
            module_time[mod] = finish
            stats = modules[mod]
            stats.instructions += 1
            stats.busy_cycles += duration
            stats.finish_time = finish
            start_cycle[idx] = start
            finish_cycle[idx] = finish
            if self.trace:
                from repro.sim.trace import TraceRecord

                trace_records.append(
                    TraceRecord(
                        index=idx, opcode=opcode.name, module=mod,
                        start=start, finish=finish,
                    )
                )

            # -- token emission --------------------------------------------
            if opcode == Opcode.LOAD_INP and dept & DeptFlag.EMIT:
                fifos["inp_data"].push(finish)
            elif opcode == Opcode.LOAD_WGT and dept & DeptFlag.EMIT:
                fifos["wgt_data"].push(finish)
            elif opcode == Opcode.COMP:
                if dept & DeptFlag.EMIT:
                    fifos["out_data"].push(finish)
                if dept & DeptFlag.FREE_INP:
                    fifos["inp_free"].push(finish)
                if dept & DeptFlag.FREE_WGT:
                    fifos["wgt_free"].push(finish)
            elif opcode == Opcode.SAVE and dept & DeptFlag.FREE_INP:
                fifos["out_free"].push(finish)

            # -- functional data movement ---------------------------------
            if not self.functional:
                continue
            if opcode == Opcode.LOAD_INP:
                strip = self._load_strip(desc)
                input_buf.write(desc["half"], strip, strip.size // cfg.pi)
            elif opcode == Opcode.LOAD_WGT:
                region = self.dram.region(desc["region"])
                flat = self.dram.read(
                    region.base + desc["offset"], desc["elems"]
                )
                weight_buf.write(
                    desc["half"],
                    flat.reshape(desc["shape"]),
                    desc["elems"] // (cfg.pi * cfg.po),
                )
            elif opcode == Opcode.LOAD_BIAS:
                region = self.dram.region(desc["region"])
                bias_buf = self.dram.read(region.base, desc["count"])
            elif opcode == Opcode.COMP:
                strip = input_buf.read(desc["inp_half"]).data
                wgt = weight_buf.read(desc["wgt_half"]).data
                kc, cc = desc["k_count"], desc["c_count"]
                if desc["clear"]:
                    accum = np.zeros(
                        (kc, desc["rows_out"], desc["out_w"]),
                        dtype=np.float64,
                    )
                    if bias_buf is not None:
                        accum += bias_buf[
                            desc["k0"] : desc["k0"] + kc, None, None
                        ]
                if accum is None:
                    raise SimulationError("COMP without prior accum_clear")
                if desc["mode"] == "spat":
                    out = pe.spatial_compute(
                        strip[:cc], wgt[0], desc["stride"], desc["rows_out"]
                    )
                    accum += out[:, :, : desc["out_w"]]
                else:
                    scales = desc.get("wgt_scales")
                    for b, (dr, ds) in enumerate(desc["blocks"]):
                        coeffs = wgt[b]
                        if scales is not None:
                            # Undo the per-position power-of-two weight
                            # scaling (a shift in hardware) before the
                            # output transform.
                            coeffs = coeffs * scales[b]
                        partial, _ = pe.winograd_compute(
                            strip[:cc, dr : dr + cfg.pt, ds:],
                            coeffs,
                            cfg.pt,
                            out_w=desc["out_w"],
                        )
                        accum += partial[:, : desc["rows_out"], : desc["out_w"]]
                if desc["flush"]:
                    out = accum
                    if desc["relu"]:
                        out = np.maximum(out, 0.0)
                    if inst.quan_param > 0:
                        out = cfg.feature_type.quantize(out)
                    output_buf.write(
                        desc["out_half"], out, out.size // cfg.po
                    )
                    accum = None
            elif opcode == Opcode.SAVE:
                data = output_buf.read(desc["half"]).data
                valid = data[:, : desc["rows_valid"], :]
                pool = desc["pool"]
                if pool > 1:
                    valid = max_pool2d(valid, pool, pool)
                    desc = dict(desc, y_dst0=desc["y0_out"] // pool)
                else:
                    desc = dict(desc, y_dst0=desc["y0_out"])
                if valid.shape[1]:
                    self._store_rows(desc, valid)

        total_cycles = max(finish_cycle.values(), default=0)
        layer_timings = []
        for marker in program.markers:
            indices = range(marker.start, marker.end)
            layer_timings.append(
                LayerTiming(
                    layer_name=marker.layer_name,
                    mode=marker.mode,
                    dataflow=marker.dataflow,
                    start_cycle=min(start_cycle[i] for i in indices),
                    finish_cycle=max(finish_cycle[i] for i in indices),
                )
            )
        return SimulationResult(
            cycles=total_cycles,
            frequency_hz=cfg.frequency_hz,
            modules=modules,
            layers=layer_timings,
            instructions=len(program),
            dram_read_elems=self.dram.total_read_elems - read0,
            dram_written_elems=self.dram.total_written_elems - written0,
            trace=trace_records,
        )

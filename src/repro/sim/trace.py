"""Execution traces: per-instruction timing records and rendering.

When the simulator runs with ``trace=True`` it records one
:class:`TraceRecord` per instruction.  The records can be exported to
JSON for external tooling or rendered as an ASCII Gantt chart — the
quickest way to *see* the producer/consumer overlap the handshake FIFOs
buy (Section 4.1's "effectively hide the external memory access
latency").
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import List, Union

from repro.errors import SimulationError

#: Display order of the four functional modules.
MODULE_ORDER = ("LOAD_INP", "LOAD_WGT", "COMP", "SAVE")


@dataclass(frozen=True)
class TraceRecord:
    """One instruction's execution window."""

    index: int
    opcode: str
    module: str
    start: int
    finish: int

    @property
    def cycles(self) -> int:
        return self.finish - self.start


def trace_to_json(records: List[TraceRecord],
                  path: Union[str, Path, None] = None) -> str:
    """Serialise records to JSON (optionally writing ``path``)."""
    text = json.dumps([asdict(r) for r in records], indent=2)
    if path is not None:
        Path(path).write_text(text)
    return text


def trace_from_json(text: str) -> List[TraceRecord]:
    """Inverse of :func:`trace_to_json`."""
    return [TraceRecord(**item) for item in json.loads(text)]


def module_occupancy(records: List[TraceRecord]) -> dict:
    """Busy-cycle sum per module."""
    busy = {name: 0 for name in MODULE_ORDER}
    for record in records:
        busy.setdefault(record.module, 0)
        busy[record.module] += record.cycles
    return busy


def render_gantt(records: List[TraceRecord], width: int = 72,
                 start: int = 0, end: int = None) -> str:
    """ASCII Gantt chart: one row per module, time left to right.

    Each instruction paints its window with the first letter of its
    opcode; overlap across rows is the pipelining the architecture
    achieves.
    """
    if not records:
        raise SimulationError("no trace records to render")
    if end is None:
        end = max(r.finish for r in records)
    span = max(1, end - start)
    scale = width / span

    rows = {}
    for name in MODULE_ORDER:
        rows[name] = [" "] * width
    for record in records:
        if record.finish <= start or record.start >= end:
            continue
        row = rows.setdefault(record.module, [" "] * width)
        a = max(0, int((record.start - start) * scale))
        b = min(width, max(a + 1, int((record.finish - start) * scale)))
        mark = record.opcode[0]  # L, C or S
        if record.opcode == "LOAD_WGT":
            mark = "W"
        elif record.opcode == "LOAD_BIAS":
            mark = "B"
        for i in range(a, b):
            row[i] = mark
    lines = [f"cycles {start}..{end} ({span} total)"]
    for name in MODULE_ORDER:
        lines.append(f"{name:9s}|{''.join(rows[name])}|")
    return "\n".join(lines)


def summarize(records: List[TraceRecord]) -> str:
    """One-paragraph utilisation summary."""
    if not records:
        return "empty trace"
    total = max(r.finish for r in records)
    busy = module_occupancy(records)
    parts = [
        f"{name} {busy.get(name, 0) / total * 100:.0f}%"
        for name in MODULE_ORDER
    ]
    return (
        f"{len(records)} instructions over {total} cycles; "
        f"module occupancy: " + ", ".join(parts)
    )

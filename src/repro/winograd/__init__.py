"""Winograd fast convolution (Section 4.2.1 and Eq. 1-2 of the paper).

Supports the two algorithm sizes the accelerator implements,
``F(2x2, 3x3)`` (tile ``PT = 4``) and ``F(4x4, 3x3)`` (tile ``PT = 6``),
plus the kernel-decomposition method of Section 4.2.5 that extends them
to arbitrary kernel sizes.

Public API
----------
``WinogradAlgorithm`` / ``get_algorithm``
    Transform matrices A, G, B and derived constants.
``transform_weight`` / ``transform_input`` / ``transform_output``
    The three transforms of Eq. 1.
``winograd_conv2d``
    Full convolution of a CHW feature map via Winograd tiling (any kernel
    size through decomposition).
``direct_conv2d``
    Spatial-convolution reference.
``decompose_kernel``
    The ceil(R/r) x ceil(S/r) kernel decomposition.
"""

from repro.winograd.matrices import WinogradAlgorithm, get_algorithm
from repro.winograd.transforms import (
    transform_input,
    transform_output,
    transform_weight,
)
from repro.winograd.decompose import decompose_kernel, decomposition_blocks
from repro.winograd.reference import (
    avg_pool2d,
    direct_conv2d,
    max_pool2d,
    relu,
)
from repro.winograd.conv import winograd_conv2d

__all__ = [
    "WinogradAlgorithm",
    "avg_pool2d",
    "decompose_kernel",
    "decomposition_blocks",
    "direct_conv2d",
    "get_algorithm",
    "max_pool2d",
    "relu",
    "transform_input",
    "transform_output",
    "transform_weight",
    "winograd_conv2d",
]

"""Kernel decomposition for large kernels (Section 4.2.5).

A CONV layer with an ``R x S`` kernel (``R > r`` or ``S > r``) is
decomposed into ``ceil(R/r) x ceil(S/r)`` kernels of size ``r x r`` (zero
padded where the original kernel does not fill a block).  Running the
``F(m x m, r x r)`` algorithm once per block on a correspondingly shifted
input window and accumulating the partial results reproduces the full
convolution.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ShapeError


def decomposition_blocks(kernel_h: int, kernel_w: int, r: int) -> List[Tuple[int, int]]:
    """Row/column offsets of each ``r x r`` block of the decomposition.

    Returns the list of ``(dr, ds)`` top-left offsets, in row-major order;
    its length is ``ceil(R/r) * ceil(S/r)`` — the factor appearing in the
    Winograd latency model (Eq. 7, 9).
    """
    if kernel_h <= 0 or kernel_w <= 0 or r <= 0:
        raise ShapeError(
            f"bad decomposition arguments R={kernel_h} S={kernel_w} r={r}"
        )
    return [
        (br * r, bs * r)
        for br in range(-(-kernel_h // r))
        for bs in range(-(-kernel_w // r))
    ]


def decompose_kernel(
    kernels: np.ndarray, r: int
) -> List[Tuple[Tuple[int, int], np.ndarray]]:
    """Split ``(K, C, R, S)`` kernels into zero-padded ``r x r`` blocks.

    Returns ``[((dr, ds), block), ...]`` where ``block`` has shape
    ``(K, C, r, r)`` and ``(dr, ds)`` is the offset of the block inside
    the original kernel (equal to the input-window shift to apply when
    accumulating partial convolutions).
    """
    kernels = np.asarray(kernels, dtype=np.float64)
    if kernels.ndim != 4:
        raise ShapeError(f"kernels must be KCRS, got {kernels.shape}")
    k, c, kernel_h, kernel_w = kernels.shape
    blocks = []
    for dr, ds in decomposition_blocks(kernel_h, kernel_w, r):
        block = np.zeros((k, c, r, r), dtype=np.float64)
        rows = min(r, kernel_h - dr)
        cols = min(r, kernel_w - ds)
        block[:, :, :rows, :cols] = kernels[:, :, dr : dr + rows, ds : ds + cols]
        blocks.append(((dr, ds), block))
    return blocks


def reconstruct_kernel(
    blocks: List[Tuple[Tuple[int, int], np.ndarray]],
    kernel_h: int,
    kernel_w: int,
) -> np.ndarray:
    """Inverse of :func:`decompose_kernel` (used by property tests)."""
    if not blocks:
        raise ShapeError("no blocks to reconstruct from")
    (dr0, ds0), first = blocks[0]
    k, c, r, _ = first.shape
    kernels = np.zeros((k, c, kernel_h, kernel_w), dtype=np.float64)
    for (dr, ds), block in blocks:
        rows = min(r, kernel_h - dr)
        cols = min(r, kernel_w - ds)
        kernels[:, :, dr : dr + rows, ds : ds + cols] = block[:, :, :rows, :cols]
    return kernels

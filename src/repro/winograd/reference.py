"""Reference (spatial) implementations of the DNN operators.

These are the golden models: the Winograd engine, the PE functional model
and the end-to-end accelerator simulation are all checked against them.
Everything is plain numpy in float64, favouring clarity over speed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def direct_conv2d(
    feature: np.ndarray,
    kernels: np.ndarray,
    bias: np.ndarray = None,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Direct (Spatial) convolution.

    Parameters
    ----------
    feature:
        ``(C, H, W)`` input feature map.
    kernels:
        ``(K, C, R, S)`` kernel tensor.
    bias:
        Optional ``(K,)`` bias.
    stride, padding:
        Common spatial stride and symmetric zero padding.

    Returns
    -------
    ``(K, H_out, W_out)`` output feature map.
    """
    feature = np.asarray(feature, dtype=np.float64)
    kernels = np.asarray(kernels, dtype=np.float64)
    if feature.ndim != 3:
        raise ShapeError(f"feature must be CHW, got {feature.shape}")
    if kernels.ndim != 4:
        raise ShapeError(f"kernels must be KCRS, got {kernels.shape}")
    c, h, w = feature.shape
    k, kc, r, s = kernels.shape
    if kc != c:
        raise ShapeError(f"channel mismatch: feature C={c}, kernel C={kc}")
    if padding:
        feature = np.pad(
            feature, ((0, 0), (padding, padding), (padding, padding))
        )
        h += 2 * padding
        w += 2 * padding
    if h < r or w < s:
        raise ShapeError(
            f"padded input {h}x{w} smaller than kernel {r}x{s}"
        )
    out_h = (h - r) // stride + 1
    out_w = (w - s) // stride + 1
    out = np.zeros((k, out_h, out_w), dtype=np.float64)
    # Accumulate over kernel offsets: for each (dr, ds) the contribution is
    # a strided slice of the input times the kernel coefficient.
    for dr in range(r):
        for ds in range(s):
            patch = feature[
                :,
                dr : dr + (out_h - 1) * stride + 1 : stride,
                ds : ds + (out_w - 1) * stride + 1 : stride,
            ]
            out += np.einsum("kc,chw->khw", kernels[:, :, dr, ds], patch)
    if bias is not None:
        bias = np.asarray(bias, dtype=np.float64)
        if bias.shape != (k,):
            raise ShapeError(f"bias must be ({k},), got {bias.shape}")
        out += bias[:, None, None]
    return out


def dense(
    vector: np.ndarray, weights: np.ndarray, bias: np.ndarray = None
) -> np.ndarray:
    """Fully-connected layer: ``y = W x + b``.

    ``vector`` is 1-D with ``N`` elements, ``weights`` is ``(M, N)``.
    """
    vector = np.asarray(vector, dtype=np.float64).reshape(-1)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2 or weights.shape[1] != vector.size:
        raise ShapeError(
            f"weights {weights.shape} incompatible with input {vector.size}"
        )
    out = weights @ vector
    if bias is not None:
        out = out + np.asarray(bias, dtype=np.float64)
    return out


def relu(array: np.ndarray) -> np.ndarray:
    """Element-wise max(x, 0)."""
    return np.maximum(np.asarray(array, dtype=np.float64), 0.0)


def _pool2d(feature: np.ndarray, pool: int, stride: int, reducer) -> np.ndarray:
    feature = np.asarray(feature, dtype=np.float64)
    if feature.ndim != 3:
        raise ShapeError(f"feature must be CHW, got {feature.shape}")
    c, h, w = feature.shape
    if h < pool or w < pool:
        raise ShapeError(f"input {h}x{w} smaller than pool window {pool}")
    out_h = (h - pool) // stride + 1
    out_w = (w - pool) // stride + 1
    out = np.empty((c, out_h, out_w), dtype=np.float64)
    for y in range(out_h):
        for x in range(out_w):
            window = feature[
                :, y * stride : y * stride + pool, x * stride : x * stride + pool
            ]
            out[:, y, x] = reducer(window.reshape(c, -1), axis=1)
    return out


def max_pool2d(feature: np.ndarray, pool: int, stride: int = 0) -> np.ndarray:
    """Max pooling over ``pool x pool`` windows."""
    return _pool2d(feature, pool, stride or pool, np.max)


def avg_pool2d(feature: np.ndarray, pool: int, stride: int = 0) -> np.ndarray:
    """Average pooling over ``pool x pool`` windows."""
    return _pool2d(feature, pool, stride or pool, np.mean)

"""Winograd transform matrices.

The ``F(m x m, r x r)`` algorithm (Lavin & Gray, CVPR 2016 — the paper's
reference [18]) computes an ``m x m`` output tile from an
``(m + r - 1) x (m + r - 1)`` input tile using three constant matrices:

* ``G``  (shape ``t x r``)   — weight transform ``U = G g G^T``
* ``B^T`` (shape ``t x t``)  — input transform  ``V = B^T d B``
* ``A^T`` (shape ``m x t``)  — output transform ``Y = A^T (U .* V) A``

where ``t = m + r - 1`` is the tile size — the paper's ``PT``.
HybridDNN instantiates ``F(2x2, 3x3)`` (PT=4) and ``F(4x4, 3x3)`` (PT=6);
larger tiles are rejected because the extra additions erase the benefit
(Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError


@dataclass(frozen=True)
class WinogradAlgorithm:
    """One F(m x m, r x r) algorithm instance.

    Matrices are stored as read-only float64 arrays.  ``tile`` is the
    input-tile edge ``m + r - 1`` (= the accelerator's ``PT``), ``m`` the
    output-tile edge and ``r`` the kernel edge.
    """

    m: int
    r: int
    bt: np.ndarray = field(repr=False)
    g: np.ndarray = field(repr=False)
    at: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        t = self.tile
        if self.bt.shape != (t, t):
            raise ReproError(f"B^T must be {t}x{t}, got {self.bt.shape}")
        if self.g.shape != (t, self.r):
            raise ReproError(f"G must be {t}x{self.r}, got {self.g.shape}")
        if self.at.shape != (self.m, t):
            raise ReproError(f"A^T must be {self.m}x{t}, got {self.at.shape}")
        for mat in (self.bt, self.g, self.at):
            mat.setflags(write=False)

    @property
    def tile(self) -> int:
        """Input tile edge ``m + r - 1`` — the paper's ``PT``."""
        return self.m + self.r - 1

    @property
    def multiplication_reduction(self) -> float:
        """Ratio of spatial to Winograd multiplications per output tile.

        For F(4x4, 3x3): 144 spatial vs 36 Winograd = 4.0 (Section 4.2.1).
        """
        spatial = (self.m * self.r) ** 2
        winograd = self.tile ** 2
        return spatial / winograd

    def __str__(self) -> str:
        return f"F({self.m}x{self.m}, {self.r}x{self.r})"


def _f2x2_3x3() -> WinogradAlgorithm:
    bt = np.array(
        [
            [1, 0, -1, 0],
            [0, 1, 1, 0],
            [0, -1, 1, 0],
            [0, 1, 0, -1],
        ],
        dtype=np.float64,
    )
    g = np.array(
        [
            [1, 0, 0],
            [0.5, 0.5, 0.5],
            [0.5, -0.5, 0.5],
            [0, 0, 1],
        ],
        dtype=np.float64,
    )
    at = np.array(
        [
            [1, 1, 1, 0],
            [0, 1, -1, -1],
        ],
        dtype=np.float64,
    )
    return WinogradAlgorithm(m=2, r=3, bt=bt, g=g, at=at)


def _f4x4_3x3() -> WinogradAlgorithm:
    bt = np.array(
        [
            [4, 0, -5, 0, 1, 0],
            [0, -4, -4, 1, 1, 0],
            [0, 4, -4, -1, 1, 0],
            [0, -2, -1, 2, 1, 0],
            [0, 2, -1, -2, 1, 0],
            [0, 4, 0, -5, 0, 1],
        ],
        dtype=np.float64,
    )
    g = np.array(
        [
            [1 / 4, 0, 0],
            [-1 / 6, -1 / 6, -1 / 6],
            [-1 / 6, 1 / 6, -1 / 6],
            [1 / 24, 1 / 12, 1 / 6],
            [1 / 24, -1 / 12, 1 / 6],
            [0, 0, 1],
        ],
        dtype=np.float64,
    )
    at = np.array(
        [
            [1, 1, 1, 1, 1, 0],
            [0, 1, -1, 2, -2, 0],
            [0, 1, 1, 4, 4, 0],
            [0, 1, -1, 8, -8, 1],
        ],
        dtype=np.float64,
    )
    return WinogradAlgorithm(m=4, r=3, bt=bt, g=g, at=at)


_ALGORITHMS = {
    (2, 3): _f2x2_3x3(),
    (4, 3): _f4x4_3x3(),
}

#: Tile sizes the accelerator supports (PT constraint of Table 2).
SUPPORTED_TILES = tuple(sorted(alg.tile for alg in _ALGORITHMS.values()))


def get_algorithm(m: int, r: int = 3) -> WinogradAlgorithm:
    """Return the F(m x m, r x r) algorithm.

    Only F(2x2, 3x3) and F(4x4, 3x3) exist, per the paper's PT in {4, 6}
    constraint.
    """
    try:
        return _ALGORITHMS[(m, r)]
    except KeyError:
        raise ReproError(
            f"unsupported Winograd algorithm F({m}x{m}, {r}x{r}); "
            f"supported: {sorted(_ALGORITHMS)}"
        ) from None


def algorithm_for_tile(tile: int) -> WinogradAlgorithm:
    """Return the algorithm whose input tile edge (PT) is ``tile``."""
    for alg in _ALGORITHMS.values():
        if alg.tile == tile:
            return alg
    raise ReproError(
        f"no Winograd algorithm with tile size {tile}; "
        f"supported tiles: {SUPPORTED_TILES}"
    )

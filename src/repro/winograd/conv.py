"""Full Winograd convolution over CHW feature maps.

Implements the GEMM form of Eq. 2: each of the ``t x t`` positions of the
element-wise matrix multiplication is an independent GEMM across
channels, which is exactly how the accelerator's PT x PT GEMM-core array
executes it.  Kernels larger than ``r x r`` go through the kernel
decomposition of Section 4.2.5.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError, UnsupportedLayerError
from repro.winograd.decompose import decompose_kernel
from repro.winograd.matrices import get_algorithm
from repro.winograd.transforms import (
    assemble_output_tiles,
    extract_input_tiles,
    pad_feature_for_tiling,
    transform_input,
    transform_output,
    transform_weight,
)


def winograd_conv2d(
    feature: np.ndarray,
    kernels: np.ndarray,
    bias: np.ndarray = None,
    m: int = 4,
    padding: int = 0,
    stride: int = 1,
) -> np.ndarray:
    """Convolve ``(C, H, W)`` with ``(K, C, R, S)`` using F(m x m, 3 x 3).

    Any ``R, S >= 1`` is supported via kernel decomposition; ``stride``
    must be 1 (the accelerator runs strided layers in Spatial mode).

    Returns ``(K, H_out, W_out)`` identical (up to float round-off) to
    :func:`repro.winograd.reference.direct_conv2d`.
    """
    if stride != 1:
        raise UnsupportedLayerError(
            "Winograd mode requires stride 1; use Spatial mode instead"
        )
    alg = get_algorithm(m, 3)
    feature = np.asarray(feature, dtype=np.float64)
    kernels = np.asarray(kernels, dtype=np.float64)
    if feature.ndim != 3:
        raise ShapeError(f"feature must be CHW, got {feature.shape}")
    if kernels.ndim != 4:
        raise ShapeError(f"kernels must be KCRS, got {kernels.shape}")
    c, h, w = feature.shape
    k, kc, kernel_h, kernel_w = kernels.shape
    if kc != c:
        raise ShapeError(f"channel mismatch: feature C={c}, kernel C={kc}")
    if padding:
        feature = np.pad(
            feature, ((0, 0), (padding, padding), (padding, padding))
        )
        h += 2 * padding
        w += 2 * padding
    if h < kernel_h or w < kernel_w:
        raise ShapeError(
            f"padded input {h}x{w} smaller than kernel {kernel_h}x{kernel_w}"
        )
    out_h = h - kernel_h + 1
    out_w = w - kernel_w + 1

    out = np.zeros((k, out_h, out_w), dtype=np.float64)
    for (dr, ds), block in decompose_kernel(kernels, alg.r):
        # Offline weight transform (Section 4.2.3): U = G g G^T.
        u = transform_weight(alg, block)  # (K, C, t, t)
        # The partial convolution for this block reads the input shifted
        # by the block offset.
        window = feature[:, dr:, ds:]
        window = pad_feature_for_tiling(alg, window, out_h, out_w)
        tiles = extract_input_tiles(alg, window)  # (C, ny, nx, t, t)
        v = transform_input(alg, tiles)
        # Eq. 2: per tile position, GEMM over channels.
        ewmm = np.einsum("kcij,cyxij->kyxij", u, v, optimize=True)
        y = transform_output(alg, ewmm)  # (K, ny, nx, m, m)
        out += assemble_output_tiles(y, out_h, out_w)
    if bias is not None:
        bias = np.asarray(bias, dtype=np.float64)
        if bias.shape != (k,):
            raise ShapeError(f"bias must be ({k},), got {bias.shape}")
        out += bias[:, None, None]
    return out


def winograd_multiplications(
    k: int, c: int, kernel_h: int, kernel_w: int, out_h: int, out_w: int, m: int
) -> int:
    """Number of scalar multiplications of the Winograd execution.

    Used by tests to check the Section-4.2.1 claim (4x reduction for
    F(4x4, 3x3)) and by the ablation benchmarks.
    """
    alg = get_algorithm(m, 3)
    blocks = (-(-kernel_h // alg.r)) * (-(-kernel_w // alg.r))
    tiles_y = -(-out_h // alg.m)
    tiles_x = -(-out_w // alg.m)
    return k * c * blocks * tiles_y * tiles_x * alg.tile ** 2


def spatial_multiplications(
    k: int, c: int, kernel_h: int, kernel_w: int, out_h: int, out_w: int
) -> int:
    """Number of scalar multiplications of the direct execution."""
    return k * c * kernel_h * kernel_w * out_h * out_w

"""The three Winograd transforms of Eq. 1.

All functions operate on float64 numpy arrays and support leading batch
dimensions so whole channel sets can be transformed in one call:

* :func:`transform_weight` — offline ``U = G g G^T`` (performed on the
  host before deployment, Section 4.2.3).
* :func:`transform_input` — online ``V = B^T d B`` (performed by the load
  manager).
* :func:`transform_output` — online ``Y = A^T M A`` with
  ``M = sum_c U .* V`` (performed by the save manager).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.winograd.matrices import WinogradAlgorithm


def _apply_two_sided(left: np.ndarray, tiles: np.ndarray, right: np.ndarray):
    """Compute ``left @ tile @ right`` over the last two axes of ``tiles``."""
    return np.einsum("ij,...jk,kl->...il", left, tiles, right, optimize=True)


def transform_weight(alg: WinogradAlgorithm, kernels: np.ndarray) -> np.ndarray:
    """Weight transform ``U = G g G^T``.

    ``kernels`` has shape ``(..., r, r)``; the result has shape
    ``(..., t, t)`` where ``t = alg.tile``.
    """
    kernels = np.asarray(kernels, dtype=np.float64)
    if kernels.shape[-2:] != (alg.r, alg.r):
        raise ShapeError(
            f"kernel tail shape {kernels.shape[-2:]} does not match r={alg.r}"
        )
    return _apply_two_sided(alg.g, kernels, alg.g.T)


def transform_input(alg: WinogradAlgorithm, tiles: np.ndarray) -> np.ndarray:
    """Input transform ``V = B^T d B``.

    ``tiles`` has shape ``(..., t, t)``; the result has the same shape.
    """
    tiles = np.asarray(tiles, dtype=np.float64)
    t = alg.tile
    if tiles.shape[-2:] != (t, t):
        raise ShapeError(
            f"input tile tail shape {tiles.shape[-2:]} does not match t={t}"
        )
    return _apply_two_sided(alg.bt, tiles, alg.bt.T)


def transform_output(alg: WinogradAlgorithm, tiles: np.ndarray) -> np.ndarray:
    """Output transform ``Y = A^T M A``.

    ``tiles`` has shape ``(..., t, t)``; the result has shape
    ``(..., m, m)``.
    """
    tiles = np.asarray(tiles, dtype=np.float64)
    t = alg.tile
    if tiles.shape[-2:] != (t, t):
        raise ShapeError(
            f"EWMM tile tail shape {tiles.shape[-2:]} does not match t={t}"
        )
    return _apply_two_sided(alg.at, tiles, alg.at.T)


def extract_input_tiles(
    alg: WinogradAlgorithm, feature: np.ndarray
) -> np.ndarray:
    """Partition a padded ``(C, H, W)`` feature map into overlapping tiles.

    Adjacent tiles overlap by ``r - 1`` (Section 4.2.1).  ``H - r + 1``
    and ``W - r + 1`` must be divisible by ``m`` (pad beforehand with
    :func:`pad_feature_for_tiling`).  The result has shape
    ``(C, n_y, n_x, t, t)``.
    """
    feature = np.asarray(feature, dtype=np.float64)
    if feature.ndim != 3:
        raise ShapeError(f"feature must be CHW, got shape {feature.shape}")
    c, h, w = feature.shape
    m, t = alg.m, alg.tile
    if (h - alg.r + 1) % m or (w - alg.r + 1) % m:
        raise ShapeError(
            f"feature {h}x{w} is not tileable by {alg}: output dims "
            f"{h - alg.r + 1}x{w - alg.r + 1} not divisible by m={m}"
        )
    n_y = (h - alg.r + 1) // m
    n_x = (w - alg.r + 1) // m
    tiles = np.empty((c, n_y, n_x, t, t), dtype=np.float64)
    for ty in range(n_y):
        for tx in range(n_x):
            tiles[:, ty, tx] = feature[
                :, ty * m : ty * m + t, tx * m : tx * m + t
            ]
    return tiles


def pad_feature_for_tiling(
    alg: WinogradAlgorithm, feature: np.ndarray, out_h: int, out_w: int
) -> np.ndarray:
    """Zero-pad (or crop) a CHW feature on bottom/right so Winograd tiling
    covers exactly an ``out_h x out_w`` valid-convolution output.

    Cropping happens when the caller hands a window larger than the tiled
    coverage (e.g. a shifted window during kernel decomposition); the
    cropped rows/columns can never influence the first ``out_h x out_w``
    outputs, so this is lossless.
    """
    feature = np.asarray(feature, dtype=np.float64)
    m = alg.m
    tiled_out_h = -(-out_h // m) * m
    tiled_out_w = -(-out_w // m) * m
    need_h = tiled_out_h + alg.r - 1
    need_w = tiled_out_w + alg.r - 1
    feature = feature[:, :need_h, :need_w]
    pad_h = need_h - feature.shape[1]
    pad_w = need_w - feature.shape[2]
    if pad_h == 0 and pad_w == 0:
        return feature
    return np.pad(feature, ((0, 0), (0, pad_h), (0, pad_w)))


def assemble_output_tiles(
    tiles: np.ndarray, out_h: int, out_w: int
) -> np.ndarray:
    """Stitch ``(K, n_y, n_x, m, m)`` output tiles back into
    ``(K, out_h, out_w)``, cropping tiling overshoot."""
    tiles = np.asarray(tiles)
    if tiles.ndim != 5 or tiles.shape[-1] != tiles.shape[-2]:
        raise ShapeError(f"bad output tile array shape {tiles.shape}")
    k, n_y, n_x, m, _ = tiles.shape
    full = tiles.transpose(0, 1, 3, 2, 4).reshape(k, n_y * m, n_x * m)
    if full.shape[1] < out_h or full.shape[2] < out_w:
        raise ShapeError(
            f"assembled output {full.shape[1]}x{full.shape[2]} smaller "
            f"than requested {out_h}x{out_w}"
        )
    return full[:, :out_h, :out_w]

"""Static validation of instruction streams.

The compiler must emit handshake flags that (a) never deadlock — every
token waited on is produced by an *earlier* instruction or a preloaded
free token — and (b) never leak or double-free ping-pong halves.  This
module checks those invariants without running the simulator, by
replaying token counts in program order; it is the software analogue of
the assertions a verification engineer would put on the RTL FIFOs.

Checked invariants
------------------
* token-count safety: no FIFO underflows (deadlock) or exceeds its
  depth (overflow / data pollution) at any point in program order;
* conservation: at end of program all data FIFOs are empty and all
  free FIFOs hold exactly their preload again;
* ping-pong alternation: consecutive loads to the same buffer target
  alternating halves;
* accumulation discipline: every COMP chain starts with
  ``accum_clear`` and ends with ``accum_flush``, and only flushing
  COMPs emit data tokens / wait for output halves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.isa.instructions import DeptFlag, Opcode
from repro.isa.program import Program

#: FIFO depth of the generated design (ping-pong).
FIFO_DEPTH = 2
FREE_PRELOAD = 2


@dataclass
class ValidationIssue:
    """One invariant violation."""

    index: int  # instruction index (-1 for end-of-program checks)
    kind: str
    message: str

    def __str__(self) -> str:
        where = "end" if self.index < 0 else f"#{self.index}"
        return f"[{where}] {self.kind}: {self.message}"


@dataclass
class ValidationReport:
    """All issues found in one program."""

    issues: List[ValidationIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def add(self, index: int, kind: str, message: str) -> None:
        self.issues.append(ValidationIssue(index, kind, message))

    def __str__(self) -> str:
        if self.ok:
            return "program valid"
        return "\n".join(str(issue) for issue in self.issues)


def validate_program(program: Program) -> ValidationReport:
    """Check the handshake/buffer invariants of ``program``."""
    report = ValidationReport()
    counts = {
        "inp_data": 0,
        "wgt_data": 0,
        "out_data": 0,
        "inp_free": FREE_PRELOAD,
        "wgt_free": FREE_PRELOAD,
        "out_free": FREE_PRELOAD,
    }

    def pop(index: int, name: str) -> None:
        if counts[name] == 0:
            report.add(
                index, "deadlock",
                f"waits on {name} token that is never produced earlier",
            )
        else:
            counts[name] -= 1

    def push(index: int, name: str) -> None:
        if counts[name] >= FIFO_DEPTH:
            report.add(
                index, "overflow",
                f"pushes {name} beyond depth {FIFO_DEPTH}",
            )
        else:
            counts[name] += 1

    last_half = {"inp": None, "wgt": None, "out": None}
    accum_open = False

    for index, inst in enumerate(program):
        dept = inst.dept_flag
        opcode = inst.opcode
        if opcode == Opcode.LOAD_INP:
            if dept & DeptFlag.WAIT_FREE:
                pop(index, "inp_free")
            if dept & DeptFlag.EMIT:
                push(index, "inp_data")
            if last_half["inp"] == inst.buff_id:
                report.add(
                    index, "ping-pong",
                    f"LOAD_INP reuses half {inst.buff_id} consecutively",
                )
            last_half["inp"] = inst.buff_id
        elif opcode == Opcode.LOAD_WGT:
            if dept & DeptFlag.WAIT_FREE:
                pop(index, "wgt_free")
            if dept & DeptFlag.EMIT:
                push(index, "wgt_data")
            if last_half["wgt"] == inst.buff_id:
                report.add(
                    index, "ping-pong",
                    f"LOAD_WGT reuses half {inst.buff_id} consecutively",
                )
            last_half["wgt"] = inst.buff_id
        elif opcode == Opcode.LOAD_BIAS:
            pass  # synchronised through the LOAD_WGT queue ordering
        elif opcode == Opcode.COMP:
            if dept & DeptFlag.WAIT_INP:
                pop(index, "inp_data")
            if dept & DeptFlag.WAIT_WGT:
                pop(index, "wgt_data")
            if dept & DeptFlag.FREE_INP:
                push(index, "inp_free")
            if dept & DeptFlag.FREE_WGT:
                push(index, "wgt_free")
            if inst.accum_clear:
                if accum_open:
                    report.add(
                        index, "accum",
                        "accum_clear while a previous accumulation is "
                        "still open (missing flush)",
                    )
                accum_open = True
            elif not accum_open:
                report.add(
                    index, "accum",
                    "COMP continues an accumulation that was never "
                    "started (missing accum_clear)",
                )
            if inst.accum_flush:
                if not accum_open:
                    report.add(index, "accum", "flush without open accum")
                accum_open = False
                if not dept & DeptFlag.EMIT:
                    report.add(
                        index, "handshake",
                        "flushing COMP does not EMIT to SAVE",
                    )
                if not dept & DeptFlag.WAIT_FREE:
                    report.add(
                        index, "handshake",
                        "flushing COMP does not wait for a free output "
                        "half",
                    )
                pop(index, "out_free")
                push(index, "out_data")
            else:
                if dept & DeptFlag.EMIT:
                    report.add(
                        index, "handshake",
                        "non-flushing COMP emits a data token",
                    )
        elif opcode == Opcode.SAVE:
            if dept & DeptFlag.WAIT_INP:
                pop(index, "out_data")
            else:
                report.add(
                    index, "handshake", "SAVE does not wait for COMP data"
                )
            if dept & DeptFlag.FREE_INP:
                push(index, "out_free")
            else:
                report.add(
                    index, "handshake", "SAVE does not release the half"
                )

    if accum_open:
        report.add(-1, "accum", "program ends with an open accumulation")
    for name in ("inp_data", "wgt_data", "out_data"):
        if counts[name] != 0:
            report.add(
                -1, "leak",
                f"{counts[name]} unconsumed {name} token(s) at program end",
            )
    for name in ("inp_free", "wgt_free", "out_free"):
        if counts[name] != FREE_PRELOAD:
            report.add(
                -1, "leak",
                f"{name} ends at {counts[name]}, expected {FREE_PRELOAD}",
            )
    return report

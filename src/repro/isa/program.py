"""Instruction stream container.

A :class:`Program` is the compiler's output: an ordered instruction list
plus metadata (layer boundaries, buffer plan) that the runtime and the
simulator consume.  It round-trips losslessly through the 16-byte binary
format (the paper's "Inst. files", Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Union

from repro.errors import EncodingError
from repro.isa.encoding import decode, encode_bytes
from repro.isa.instructions import Instruction, Opcode


@dataclass
class LayerMarker:
    """Range of instructions implementing one network layer."""

    layer_name: str
    start: int
    end: int  # exclusive
    mode: str = "spat"  # "spat" | "wino"
    dataflow: str = "is"  # "is" | "ws"


@dataclass
class Program:
    """An executable instruction stream.

    Attributes
    ----------
    instructions:
        The stream, in fetch order.
    markers:
        Per-layer instruction ranges (in stream order).
    metadata:
        Free-form compiler annotations (buffer plan, config echo, ...).
    """

    instructions: List[Instruction] = field(default_factory=list)
    markers: List[LayerMarker] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def append(self, instruction: Instruction) -> None:
        self.instructions.append(instruction)

    def extend(self, instructions) -> None:
        self.instructions.extend(instructions)

    def mark_layer(
        self, layer_name: str, start: int, mode: str, dataflow: str
    ) -> None:
        """Record that instructions ``start:`` (to current end) implement
        ``layer_name``."""
        self.markers.append(
            LayerMarker(
                layer_name=layer_name,
                start=start,
                end=len(self.instructions),
                mode=mode,
                dataflow=dataflow,
            )
        )

    def layer_slice(self, layer_name: str) -> List[Instruction]:
        """The instructions implementing ``layer_name``."""
        for marker in self.markers:
            if marker.layer_name == layer_name:
                return self.instructions[marker.start : marker.end]
        raise KeyError(f"no layer {layer_name!r} in program")

    def count_by_opcode(self) -> Dict[Opcode, int]:
        counts: Dict[Opcode, int] = {}
        for instruction in self.instructions:
            counts[instruction.opcode] = counts.get(instruction.opcode, 0) + 1
        return counts

    # -- binary round-trip ------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise to the on-DRAM binary format (16 bytes/instruction)."""
        return b"".join(encode_bytes(i) for i in self.instructions)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Program":
        """Deserialise a binary instruction stream (markers are lost —
        they are host-side metadata, not part of the binary)."""
        if len(blob) % 16:
            raise EncodingError(
                f"binary length {len(blob)} is not a multiple of 16"
            )
        instructions = [
            decode(blob[offset : offset + 16])
            for offset in range(0, len(blob), 16)
        ]
        return cls(instructions=instructions)

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_bytes(self.to_bytes())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Program":
        return cls.from_bytes(Path(path).read_bytes())

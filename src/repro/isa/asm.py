"""Textual assembler / disassembler.

The assembly format is one instruction per line::

    COMP buff=0 dept=EMIT|WAIT_INP ic_number=16 oc_number=4 ...

Field order is free; omitted fields take their dataclass defaults.  Lines
starting with ``#`` or ``;`` and blank lines are ignored.  The format
exists for debugging compiled programs and for writing hand-crafted test
programs.
"""

from __future__ import annotations

from typing import List

from repro.errors import EncodingError
from repro.isa.instructions import (
    INSTRUCTION_CLASSES,
    DeptFlag,
    Instruction,
    Opcode,
)
from repro.isa.program import Program


def _format_dept(flag: DeptFlag) -> str:
    if flag == DeptFlag.NONE:
        return "NONE"
    names = [f.name for f in DeptFlag if f != DeptFlag.NONE and f in flag]
    return "|".join(names)


def _parse_dept(text: str) -> DeptFlag:
    flag = DeptFlag.NONE
    for part in text.split("|"):
        part = part.strip().upper()
        if not part or part == "NONE":
            continue
        try:
            flag |= DeptFlag[part]
        except KeyError:
            raise EncodingError(f"unknown DEPT flag {part!r}") from None
    return flag


def disassemble_instruction(instruction: Instruction) -> str:
    """One line of assembly for ``instruction``."""
    from dataclasses import fields as dc_fields

    cls = type(instruction)
    parts = [instruction.opcode.name]
    parts.append(f"buff={instruction.buff_id}")
    parts.append(f"dept={_format_dept(instruction.dept_flag)}")
    for f in dc_fields(cls):
        if f.name in ("dept_flag", "buff_id"):
            continue
        value = getattr(instruction, f.name)
        default = f.default
        if value != default:
            parts.append(f"{f.name}={int(value)}")
    return " ".join(parts)


def disassemble(program: Program) -> str:
    """Full program listing with layer-marker comments."""
    lines: List[str] = []
    marker_starts = {m.start: m for m in program.markers}
    for index, instruction in enumerate(program.instructions):
        if index in marker_starts:
            marker = marker_starts[index]
            lines.append(
                f"# layer {marker.layer_name} "
                f"mode={marker.mode} dataflow={marker.dataflow}"
            )
        lines.append(disassemble_instruction(instruction))
    return "\n".join(lines) + ("\n" if lines else "")


def assemble_line(line: str) -> Instruction:
    """Parse one line of assembly."""
    tokens = line.split()
    if not tokens:
        raise EncodingError("empty assembly line")
    opcode_name = tokens[0].upper()
    try:
        opcode = Opcode[opcode_name]
    except KeyError:
        raise EncodingError(f"unknown opcode {opcode_name!r}") from None
    cls = INSTRUCTION_CLASSES[opcode]
    kwargs = {}
    for token in tokens[1:]:
        if "=" not in token:
            raise EncodingError(f"malformed operand {token!r}")
        key, _, value = token.partition("=")
        key = key.strip()
        if key == "buff":
            kwargs["buff_id"] = int(value)
        elif key == "dept":
            kwargs["dept_flag"] = _parse_dept(value)
        else:
            kwargs[key] = int(value)
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise EncodingError(f"bad operands for {opcode_name}: {exc}") from None


def assemble(text: str) -> Program:
    """Parse a full assembly listing into a :class:`Program`."""
    program = Program()
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#") or line.startswith(";"):
            continue
        program.append(assemble_line(line))
    return program

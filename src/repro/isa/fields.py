"""Bit-field machinery for 128-bit instruction words.

A :class:`BitLayout` is an ordered list of named fields with fixed widths.
Packing validates ranges (raising :class:`~repro.errors.EncodingError` on
overflow) so compiler bugs surface at encode time instead of as silent
corruption, mirroring what an RTL assertion would catch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import EncodingError

WORD_BITS = 128


@dataclass(frozen=True)
class Field:
    """One contiguous bit field: ``width`` bits starting at ``offset``."""

    name: str
    width: int
    offset: int

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    @property
    def max_value(self) -> int:
        return self.mask


class BitLayout:
    """Ordered collection of fields packed LSB-first into one word.

    Fields are laid out in declaration order from bit 0 upward; the
    remainder up to 128 bits is reserved (must decode as zero).
    """

    def __init__(self, name: str, fields: List[Tuple[str, int]]):
        self.name = name
        self.fields: List[Field] = []
        self._by_name: Dict[str, Field] = {}
        offset = 0
        for field_name, width in fields:
            if width <= 0:
                raise EncodingError(
                    f"{name}.{field_name}: width must be positive"
                )
            if field_name in self._by_name:
                raise EncodingError(f"{name}: duplicate field {field_name!r}")
            field = Field(field_name, width, offset)
            self.fields.append(field)
            self._by_name[field_name] = field
            offset += width
        if offset > WORD_BITS:
            raise EncodingError(
                f"{name}: fields use {offset} bits, exceeding {WORD_BITS}"
            )
        self.used_bits = offset

    def __contains__(self, field_name: str) -> bool:
        return field_name in self._by_name

    def field(self, field_name: str) -> Field:
        try:
            return self._by_name[field_name]
        except KeyError:
            raise EncodingError(
                f"{self.name}: unknown field {field_name!r}"
            ) from None

    def pack(self, values: Dict[str, int]) -> int:
        """Pack ``values`` into a 128-bit integer.

        Every field must be present; extra keys are rejected.
        """
        extra = set(values) - set(self._by_name)
        if extra:
            raise EncodingError(f"{self.name}: unexpected fields {sorted(extra)}")
        missing = set(self._by_name) - set(values)
        if missing:
            raise EncodingError(f"{self.name}: missing fields {sorted(missing)}")
        word = 0
        for field in self.fields:
            value = values[field.name]
            if not isinstance(value, int) or isinstance(value, bool):
                value = int(value)
            if value < 0 or value > field.max_value:
                raise EncodingError(
                    f"{self.name}.{field.name}: value {value} does not fit "
                    f"in {field.width} bits"
                )
            word |= value << field.offset
        return word

    def unpack(self, word: int) -> Dict[str, int]:
        """Unpack a 128-bit integer; reserved bits must be zero."""
        if word < 0 or word >= 1 << WORD_BITS:
            raise EncodingError(
                f"{self.name}: word out of 128-bit range"
            )
        values = {}
        for field in self.fields:
            values[field.name] = (word >> field.offset) & field.mask
        reserved = word >> self.used_bits
        if reserved:
            raise EncodingError(
                f"{self.name}: reserved bits are non-zero (0x{reserved:x})"
            )
        return values

"""128-bit encode/decode of the instruction dataclasses.

Layouts (LSB-first).  Shared header: ``opcode`` (4), ``dept_flag`` (4),
``buff_id`` (2).  Field widths are sized so every quantity the compiler
can produce for the paper's workloads fits with ample margin; the
remaining bits up to 128 are reserved and must be zero.
"""

from __future__ import annotations

from typing import Union

from repro.errors import EncodingError
from repro.isa.fields import BitLayout
from repro.isa.instructions import (
    INSTRUCTION_CLASSES,
    DeptFlag,
    Instruction,
    Opcode,
)

_HEADER = [("opcode", 4), ("dept_flag", 6), ("buff_id", 2)]

LOAD_LAYOUT = BitLayout(
    "LOAD",
    _HEADER
    + [
        ("buff_base", 16),
        ("dram_base", 32),
        ("size_chan", 12),
        ("size_rows", 12),
        ("size_cols", 12),
        ("pads_top", 4),
        ("pads_bottom", 4),
        ("pads_left", 4),
        ("pads_right", 4),
        ("wino_flag", 1),
        ("wino_offset", 8),
    ],
)

COMP_LAYOUT = BitLayout(
    "COMP",
    _HEADER
    + [
        ("inp_buff_base", 16),
        ("out_buff_base", 16),
        ("wgt_buff_base", 16),
        ("iw_number", 12),
        ("ic_number", 12),
        ("oc_number", 12),
        ("stride_size", 4),
        ("relu_flag", 1),
        ("quan_param", 8),
        ("wino_flag", 1),
        ("wino_offset", 8),
        ("accum_clear", 1),
        ("accum_flush", 1),
        ("inp_buff_id", 1),
        ("wgt_buff_id", 1),
        ("out_buff_id", 1),
    ],
)

SAVE_LAYOUT = BitLayout(
    "SAVE",
    _HEADER
    + [
        ("buff_base", 16),
        ("dram_base", 32),
        ("size_chan", 12),
        ("size_rows", 12),
        ("size_cols", 12),
        ("wino_flag", 1),
        ("dst_wino_flag", 1),
        ("pool_size", 4),
        ("iw_blk_number", 8),
        ("oc_blk_number", 8),
        ("ow_blk_number", 8),
    ],
)

_LAYOUTS = {
    Opcode.LOAD_INP: LOAD_LAYOUT,
    Opcode.LOAD_WGT: LOAD_LAYOUT,
    Opcode.LOAD_BIAS: LOAD_LAYOUT,
    Opcode.COMP: COMP_LAYOUT,
    Opcode.SAVE: SAVE_LAYOUT,
}


def encode(instruction: Instruction) -> int:
    """Encode an instruction into a 128-bit integer word."""
    layout = _LAYOUTS[instruction.opcode]
    return layout.pack(instruction.field_values())


def encode_bytes(instruction: Instruction) -> bytes:
    """Encode to the 16-byte little-endian on-DRAM representation."""
    return encode(instruction).to_bytes(16, "little")


def decode(word: Union[int, bytes]) -> Instruction:
    """Decode a 128-bit word (int or 16 bytes) back to an instruction."""
    if isinstance(word, (bytes, bytearray)):
        if len(word) != 16:
            raise EncodingError(
                f"instruction words are 16 bytes, got {len(word)}"
            )
        word = int.from_bytes(word, "little")
    opcode_value = word & 0xF
    try:
        opcode = Opcode(opcode_value)
    except ValueError:
        raise EncodingError(f"unknown opcode {opcode_value:#x}") from None
    layout = _LAYOUTS[opcode]
    values = layout.unpack(word)
    values.pop("opcode")
    values["dept_flag"] = DeptFlag(values["dept_flag"])
    cls = INSTRUCTION_CLASSES[opcode]
    return cls(**values)


# Re-export for introspection/tests.
LAYOUTS = dict(_LAYOUTS)

"""Instruction dataclasses mirroring Figure 2.

Every instruction carries:

* ``OPCODE`` — which functional module executes it;
* ``DEPT_FLAG`` — handshake-FIFO synchronisation bits (Section 4.1): a
  producer may *wait* for a free-buffer token from its consumer and
  *emit* a data token when done; a consumer waits for data tokens and
  emits free tokens;
* ``BUFF_ID`` — which half of the ping-pong buffer pair to use;
* ``WINO_FLAG`` — Winograd (1) or Spatial (0) mode.

The exact bit widths are this reproduction's choice (the paper fixes the
128-bit total and the field names but not the widths); they are sized for
feature maps up to 4095x4095 with 4095 channel-vectors, far beyond any
DNN in the evaluation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields as dc_fields


class Opcode(enum.IntEnum):
    """4-bit opcode selecting the functional module."""

    LOAD_INP = 0x1
    LOAD_WGT = 0x2
    LOAD_BIAS = 0x3
    COMP = 0x4
    SAVE = 0x5


class DeptFlag(enum.IntFlag):
    """Dependency-flag bits of the ``DEPT_FLAG`` domain.

    ``WAIT_INP`` / ``WAIT_WGT``
        COMP waits for a data token from LOAD_INP / LOAD_WGT.
    ``EMIT``
        Emit a data token to the downstream consumer when finished
        (LOAD_* -> COMP, COMP -> SAVE).
    ``WAIT_FREE``
        Wait for a free-buffer token from the consumer before overwriting
        a ping-pong half (prevents data pollution, Section 4.1).
    ``FREE_INP`` / ``FREE_WGT``
        Emit a free-buffer token back to the upstream producer once the
        data has been consumed for the last time (COMP releases input /
        weight halves; SAVE uses ``FREE_INP`` to release output halves).
    """

    NONE = 0
    WAIT_INP = 1
    WAIT_WGT = 2
    EMIT = 4
    WAIT_FREE = 8
    FREE_INP = 16
    FREE_WGT = 32


@dataclass(frozen=True)
class Instruction:
    """Base class; concrete subclasses define the Figure-2 layouts."""

    dept_flag: DeptFlag = DeptFlag.NONE
    buff_id: int = 0

    @property
    def opcode(self) -> Opcode:
        raise NotImplementedError

    def field_values(self) -> dict:
        """Field name -> int value, for the encoder."""
        values = {"opcode": int(self.opcode)}
        for f in dc_fields(self):
            values[f.name] = int(getattr(self, f.name))
        return values

    def __str__(self) -> str:
        parts = [
            f"{f.name}={getattr(self, f.name)!r}"
            for f in dc_fields(self)
            if f.name not in ("dept_flag", "buff_id")
        ]
        return (
            f"{self.opcode.name} buff={self.buff_id} "
            f"dept={self.dept_flag!r} " + " ".join(parts)
        )


@dataclass(frozen=True)
class _Load(Instruction):
    """Common layout of LOAD_INP / LOAD_WGT / LOAD_BIAS.

    ``size_*`` describe the transferred block: ``size_chan`` channel
    *vectors* (of PI or PO elements — the paper's Figure-5 convention),
    ``size_rows`` x ``size_cols`` spatial extent.  ``pads_*`` give the
    zero padding the load manager materialises on the fly.
    ``wino_offset`` is the kernel-decomposition block index
    (row * 16 + col packing of the (dr, ds) offset in units of r).
    """

    buff_base: int = 0
    dram_base: int = 0
    size_chan: int = 1
    size_rows: int = 1
    size_cols: int = 1
    pads_top: int = 0
    pads_bottom: int = 0
    pads_left: int = 0
    pads_right: int = 0
    wino_flag: int = 0
    wino_offset: int = 0


@dataclass(frozen=True)
class LoadInp(_Load):
    """Load a group of input feature-map rows from external memory."""

    @property
    def opcode(self) -> Opcode:
        return Opcode.LOAD_INP


@dataclass(frozen=True)
class LoadWgt(_Load):
    """Load a group of (possibly Winograd-transformed) weights."""

    @property
    def opcode(self) -> Opcode:
        return Opcode.LOAD_WGT


@dataclass(frozen=True)
class LoadBias(_Load):
    """Load one group of biases."""

    @property
    def opcode(self) -> Opcode:
        return Opcode.LOAD_BIAS


@dataclass(frozen=True)
class Comp(Instruction):
    """Run the PE over one (row-group x weight-group) work unit.

    ``iw_number`` is the number of output columns (Spatial) or column
    tiles (Winograd); ``ic_number`` / ``oc_number`` are input/output
    channel-vector counts; ``quan_param`` is the right-shift
    requantisation amount applied by the save path.
    """

    inp_buff_base: int = 0
    out_buff_base: int = 0
    wgt_buff_base: int = 0
    iw_number: int = 1
    ic_number: int = 1
    oc_number: int = 1
    stride_size: int = 1
    relu_flag: int = 0
    quan_param: int = 0
    wino_flag: int = 0
    wino_offset: int = 0
    accum_clear: int = 1
    accum_flush: int = 1
    inp_buff_id: int = 0
    wgt_buff_id: int = 0
    out_buff_id: int = 0

    @property
    def opcode(self) -> Opcode:
        return Opcode.COMP


@dataclass(frozen=True)
class Save(Instruction):
    """Store one group of output rows back to external memory.

    ``dst_wino_flag`` selects the data-layout transform of Figure 5:
    together with ``wino_flag`` it covers WINO/SPAT -> WINO/SPAT.
    ``pool_size`` > 1 applies fused max pooling.  The ``*_blk_number``
    fields describe the block geometry the SAVE module iterates over
    (input-width, output-channel and output-width blocks).
    """

    buff_base: int = 0
    dram_base: int = 0
    size_chan: int = 1
    size_rows: int = 1
    size_cols: int = 1
    wino_flag: int = 0
    dst_wino_flag: int = 0
    pool_size: int = 1
    iw_blk_number: int = 1
    oc_blk_number: int = 1
    ow_blk_number: int = 1

    @property
    def opcode(self) -> Opcode:
        return Opcode.SAVE


#: Opcode -> dataclass used by the decoder.
INSTRUCTION_CLASSES = {
    Opcode.LOAD_INP: LoadInp,
    Opcode.LOAD_WGT: LoadWgt,
    Opcode.LOAD_BIAS: LoadBias,
    Opcode.COMP: Comp,
    Opcode.SAVE: Save,
}

"""Customized 128-bit instruction set (Figure 2 of the paper).

Five instructions drive the accelerator's functional modules:
``LOAD_INP``, ``LOAD_WGT``, ``LOAD_BIAS``, ``COMP`` and ``SAVE``.  Every
instruction is encoded in one 128-bit word; all carry a ``WINO_FLAG``
selecting the CONV mode and a ``DEPT_FLAG`` describing the handshake-FIFO
synchronisation of Section 4.1.

Public API
----------
``Opcode``, ``DeptFlag``
    Enumerations of opcodes and dependency-flag bits.
``LoadInp`` / ``LoadWgt`` / ``LoadBias`` / ``Comp`` / ``Save``
    Instruction dataclasses.
``encode`` / ``decode``
    128-bit word conversion.
``Program``
    Instruction container with binary and textual round-trips.
``assemble`` / ``disassemble``
    Human-readable assembly.
"""

from repro.isa.instructions import (
    Comp,
    DeptFlag,
    Instruction,
    LoadBias,
    LoadInp,
    LoadWgt,
    Opcode,
    Save,
)
from repro.isa.encoding import decode, encode
from repro.isa.program import Program
from repro.isa.asm import assemble, disassemble
from repro.isa.validate import (
    ValidationIssue,
    ValidationReport,
    validate_program,
)

__all__ = [
    "Comp",
    "DeptFlag",
    "Instruction",
    "LoadBias",
    "LoadInp",
    "LoadWgt",
    "Opcode",
    "Program",
    "Save",
    "ValidationIssue",
    "ValidationReport",
    "assemble",
    "decode",
    "disassemble",
    "encode",
    "validate_program",
]

#!/usr/bin/env python
"""Batch throughput across accelerator instances (Table 4 accounting).

The VU9P design's 3375.7 GOPS headline comes from six instances running
*different images* concurrently. This example measures that with the
BatchRunner: per-image latency stays that of one instance (which sees
1/6 of the DRAM bandwidth), while throughput scales with the instance
count — until memory sharing bites.

Run:  python examples/batch_throughput.py
"""

from dataclasses import replace

import numpy as np

from repro import (
    AcceleratorConfig,
    CompilerOptions,
    compile_network,
    generate_parameters,
    get_device,
)
from repro.dse.engine import map_network
from repro.estimator.calibration import get_calibration
from repro.ir import zoo
from repro.pipeline import EvaluationCache
from repro.runtime.batch import BatchRunner


def main():
    device = get_device("vu9p")
    # A VGG16-like stack, scaled so the demo runs in seconds.
    net = zoo.vgg16(input_size=64, include_fc=False)
    params = generate_parameters(net)
    ops = sum(i.ops for i in net.compute_layers())
    batch = [np.zeros(net.input_shape.as_tuple())] * 12

    print(f"model: {net.name}-64, {ops / 1e9:.2f} GOP/image, "
          f"batch of {len(batch)}\n")
    print(f"{'NI':>3} {'ms/image':>9} {'batch ms':>9} "
          f"{'img/s':>8} {'GOPS':>9}")
    base = AcceleratorConfig(
        pi=4, po=4, pt=6, instances=1, frequency_mhz=167.0,
        input_buffer_vecs=32768, weight_buffer_vecs=16384,
        output_buffer_vecs=16384,
    )
    # Calibration resolved once; the cache shares the group-partition
    # geometry across the NI sweep (it is instance-count independent).
    cal = get_calibration(device.name)
    cache = EvaluationCache()
    for ni in (1, 2, 3, 6):
        cfg = replace(base, instances=ni)
        mapping, _ = map_network(cfg, device, net, cal, cache=cache)
        compiled = compile_network(
            net, cfg, mapping, params,
            CompilerOptions(quantize=True, pack_data=False),
        )
        runner = BatchRunner(compiled, device, ops)
        result = runner.run(batch)
        print(f"{ni:>3} {result.per_image_seconds * 1e3:>9.2f} "
              f"{result.makespan_seconds * 1e3:>9.2f} "
              f"{result.images_per_second:>8.1f} "
              f"{result.throughput_gops:>9.1f}")
    print("\nper-image latency grows slightly with NI (shared DRAM "
          "bandwidth); throughput scales with instances — the paper's "
          "multi-die scaling story.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Visualise the 4-module pipeline with an execution trace.

Runs one convolution layer in both dataflows, collects per-instruction
traces, and renders ASCII Gantt charts — making Section 4.1's point
visible: ping-pong buffers + handshake FIFOs overlap the LOAD / COMP /
SAVE modules so memory latency hides behind compute.

Run:  python examples/pipeline_trace.py
"""

import numpy as np

from repro import (
    AcceleratorConfig,
    CompilerOptions,
    HostRuntime,
    NetworkMapping,
    compile_network,
    generate_parameters,
    get_device,
)
from repro.ir import zoo
from repro.mapping.strategy import LayerMapping
from repro.sim import render_gantt, summarize


def run_with_trace(mode, dataflow):
    device = get_device("pynq-z1")
    cfg = AcceleratorConfig(
        pi=4, po=4, pt=4, frequency_mhz=100.0,
        input_buffer_vecs=8192, weight_buffer_vecs=2048,
        output_buffer_vecs=2048,
    )
    net = zoo.single_conv(32, 32, 28, 3, padding=1)
    params = generate_parameters(net, seed=3)
    mapping = NetworkMapping(
        net.name, [LayerMapping("conv", mode, dataflow)]
    )
    compiled = compile_network(
        net, cfg, mapping, params,
        CompilerOptions(quantize=True, pack_data=False),
    )
    runtime = HostRuntime(compiled, device, functional=False, trace=True)
    sim = runtime.infer(np.zeros(net.input_shape.as_tuple())).sim
    return sim


def main():
    for mode, dataflow in (("wino", "ws"), ("spat", "is")):
        sim = run_with_trace(mode, dataflow)
        print(f"=== {mode}-{dataflow}: 32ch 28x28 3x3 conv ===")
        print(summarize(sim.trace))
        # Zoom on the steady state (skip the prologue).
        window = sim.cycles // 4
        print(render_gantt(sim.trace, width=72, start=window,
                           end=2 * window))
        print()
    print("Legend: L = LOAD_INP, W = LOAD_WGT, B = LOAD_BIAS, "
          "C = COMP, S = SAVE")
    print("Overlapping marks across rows = hidden memory latency "
          "(Section 4.1).")


if __name__ == "__main__":
    main()

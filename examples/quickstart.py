#!/usr/bin/env python
"""Quickstart: the whole HybridDNN flow on a small CNN in ~30 lines.

1. Describe a model (or load one from JSON).
2. Run the DSE for a target FPGA.
3. Compile to the 128-bit instruction stream + data files.
4. Execute on the cycle-approximate simulator and verify the output
   against a numpy reference.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CompilerOptions,
    HostRuntime,
    compile_network,
    generate_parameters,
    get_device,
    reference_inference,
    run_dse,
)
from repro.dse.space import DseOptions
from repro.ir import NetworkBuilder


def main():
    # 1. Describe a model.
    net = (
        NetworkBuilder("quickstart", input_shape=(3, 32, 32))
        .conv2d(16, kernel_size=3, padding=1, relu=True)
        .conv2d(32, kernel_size=3, padding=1, relu=True)
        .maxpool2d(2)
        .conv2d(32, kernel_size=3, padding=1, relu=True)
        .flatten()
        .dense(10)
        .build()
    )
    print(net.summary())

    # 2. Explore the design space for the embedded platform.
    device = get_device("pynq-z1")
    result = run_dse(device, net, DseOptions())
    print()
    print("DSE selection:")
    print(result.summary())

    # 3. Compile: instructions + packed (Winograd-transformed) weights.
    params = generate_parameters(net, seed=42)
    compiled = compile_network(
        net, result.cfg, result.mapping, params,
        CompilerOptions(quantize=False),
    )
    print(f"\ncompiled {compiled.total_instructions} instructions "
          f"in {len(compiled.steps)} step(s)")

    # 4. Simulate and verify.
    runtime = HostRuntime(compiled, device)
    rng = np.random.default_rng(0)
    image = rng.normal(size=(3, 32, 32))
    out = runtime.infer(image)
    ref = reference_inference(net, params, image)
    err = np.abs(out.output - ref).max()
    print(f"simulated inference: {out.seconds * 1e3:.3f} ms "
          f"({out.sim.cycles} cycles), max |err| vs reference = {err:.2e}")
    assert err < 1e-9, "accelerator output does not match the reference!"
    print("OK - accelerator output matches the numpy reference exactly.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The paper's embedded case study: VGG16-class inference on PYNQ-Z1.

Shows what changes at the embedded scale:
* the DSE drops to PT=4 (F(2x2,3x3)) and one instance — the exact
  paper configuration, 100 % DSP utilisation;
* quantised (8-bit weight / 12-bit activation) inference through the
  functional simulator on a scaled-down model;
* the bandwidth sensitivity that makes mode flexibility matter for
  IoT-class memory systems (Section 6.2).

Run:  python examples/embedded_pynq.py
"""

import numpy as np

from repro import (
    CompilerOptions,
    HostRuntime,
    compile_network,
    estimate_resources,
    generate_parameters,
    get_device,
    reference_inference,
    run_dse,
)
from repro.dse.space import DseOptions
from repro.experiments.ablation import (
    format_bandwidth_ablation,
    run_bandwidth_ablation,
)
from repro.ir import zoo


def main():
    device = get_device("pynq-z1")

    # Full VGG16 DSE (the paper configuration falls out).
    net = zoo.vgg16()
    result = run_dse(device, net, DseOptions(frequency_mhz=100))
    print("DSE selection for VGG16 (paper: PI=4 PO=4 PT=4, 1 instance):")
    print(result.summary())
    resources = estimate_resources(result.cfg, device)
    print(f"resources (Table 3): {resources} — "
          f"{resources.dsps / device.resources.dsps * 100:.0f}% of DSPs\n")

    # Quantised functional inference on a scaled-down VGG-style model
    # (full VGG16 functional simulation is minutes of numpy; the scaled
    # model exercises the identical code paths).
    from repro.dse.engine import map_network

    small = zoo.vgg16(input_size=32, include_fc=False)
    params = generate_parameters(small, seed=9)
    mapping, _ = map_network(result.cfg, device, small)
    compiled = compile_network(
        small, result.cfg, mapping, params, CompilerOptions(quantize=True)
    )
    runtime = HostRuntime(compiled, device)
    rng = np.random.default_rng(1)
    image = rng.normal(size=small.input_shape.as_tuple())
    out = runtime.infer(image)
    ref = reference_inference(
        small, params, image,
        feature_type=result.cfg.feature_type,
        weight_type=result.cfg.weight_type,
    )
    rel = np.abs(out.output - ref).max() / (np.abs(ref).max() + 1e-12)
    print(f"quantised inference on {small.name}-32: "
          f"{out.seconds * 1e3:.2f} ms, relative deviation from the "
          f"fixed-point reference {rel:.1%} "
          "(Winograd quantises transformed weights)")

    # Bandwidth ablation: why the hybrid design matters for IoT.
    print()
    print(format_bandwidth_ablation(run_bandwidth_ablation()))


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Bring-your-own-model flow: JSON model in, HLS project + program out.

Demonstrates the "framework" usage the paper targets: a user who has a
model description and an FPGA part, and wants a deployable accelerator
without writing RTL:

1. parse a model from JSON (the Step-1 parser);
2. DSE across *several* catalog devices and compare;
3. inspect the per-layer mapping choices;
4. emit the instruction stream binary, the assembly listing and the
   HLS project for the chosen device.

Run:  python examples/custom_network_dse.py [output_dir]
"""

import json
import sys
import tempfile
from pathlib import Path

from repro import get_device
from repro.dse.space import DseOptions
from repro.hls import HlsConfig, emit_project
from repro.ir import network_from_dict
from repro.isa import disassemble
from repro.pipeline import EvaluationCache, PipelineSession

MODEL_JSON = {
    "name": "detector_backbone",
    "input_shape": [3, 96, 96],
    "layers": [
        {"type": "conv2d", "name": "stem", "out_channels": 24,
         "kernel_size": [5, 5], "stride": 1, "padding": 2, "relu": True},
        {"type": "maxpool2d", "name": "pool0", "pool_size": 2},
        {"type": "conv2d", "name": "b1a", "out_channels": 48,
         "kernel_size": [3, 3], "padding": 1, "relu": True},
        {"type": "conv2d", "name": "b1b", "out_channels": 48,
         "kernel_size": [3, 3], "padding": 1, "relu": True},
        {"type": "maxpool2d", "name": "pool1", "pool_size": 2},
        {"type": "conv2d", "name": "b2a", "out_channels": 96,
         "kernel_size": [3, 3], "padding": 1, "relu": True},
        {"type": "conv2d", "name": "head", "out_channels": 96,
         "kernel_size": [1, 1], "relu": False},
    ],
}


def main(out_dir=None):
    # Step 1: parse.
    net = network_from_dict(MODEL_JSON)
    print(net.summary())

    # Step 2: DSE across catalog devices.  One PipelineSession per
    # device, all sharing a single evaluation cache: the per-layer
    # estimates and the DSE selection are computed lazily, once.
    print("\nDSE across devices:")
    cache = EvaluationCache()
    sessions = {
        name: PipelineSession(net, name, DseOptions(jobs=2), cache=cache,
                              seed=13)
        for name in ("vu9p", "zcu102", "pynq-z1")
    }
    for name, session in sessions.items():
        r = session.dse()
        print(f"  {name:8s}: PI={r.cfg.pi} PO={r.cfg.po} PT={r.cfg.pt} "
              f"x{r.cfg.instances}  {r.latency_ms:7.3f} ms/img  "
              f"{r.throughput_gops:8.1f} GOPS  "
              f"({r.candidates_pruned}/{r.candidates_considered} pruned)")
    print(f"  shared cache: {cache.stats.describe()}")

    # Step 3: inspect the embedded mapping.
    choice_session = sessions["pynq-z1"]
    choice = choice_session.dse()
    print("\nper-layer mapping on pynq-z1:")
    for m in choice.mapping:
        est = next(
            l for l in choice.estimate.layers if l.layer_name == m.layer_name
        )
        print(f"  {m.layer_name:6s} {m.mode:4s}-{m.dataflow:2s} "
              f"{est.latency * 1e3:7.3f} ms  bound={est.bound}")

    # Step 4: emit everything a deployment needs.
    out_dir = Path(out_dir or tempfile.mkdtemp(prefix="hybriddnn_custom_"))
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "model.json").write_text(json.dumps(MODEL_JSON, indent=2))
    compiled = choice_session.compiled()
    program = compiled.steps[0].program
    program.save(out_dir / "program.bin")
    (out_dir / "program.asm").write_text(disassemble(program))
    emit_project(
        HlsConfig.from_config(choice.cfg, get_device("pynq-z1"), net.name),
        out_dir,
    )
    weight_elems = sum(p.elems for p in compiled.weights.values())
    print(f"\nwrote {out_dir}:")
    print(f"  program.bin   {len(program)} instructions "
          f"({len(program) * 16} bytes)")
    print(f"  program.asm   human-readable listing")
    print(f"  hybriddnn_*   HLS project ({weight_elems} weight elements "
          "to load at runtime)")
    # Show a taste of the generated assembly.
    print("\nfirst instructions:")
    for line in disassemble(program).splitlines()[:8]:
        print("  " + line)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)

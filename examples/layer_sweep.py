#!/usr/bin/env python
"""Figure-6 style layer sweep with an ASCII rendering of the series.

Sweeps CONV layers across kernel sizes and feature/channel shapes on
the VU9P configuration and plots Winograd vs Spatial, estimated vs
real — the fluctuation pattern of the paper's Figure 6.

Run:  python examples/layer_sweep.py [vu9p|pynq-z1]
"""

import sys

from repro.experiments.figure6 import (
    format_figure6,
    run_figure6,
)


def ascii_series(points, attr, width=60, label=""):
    """One-line-per-layer bar chart of a GOPS series."""
    values = [getattr(p, attr) for p in points]
    peak = max(values)
    lines = [f"{label} (peak {peak:.0f} GOPS)"]
    for p, v in zip(points, values):
        bar = "#" * max(1, int(v / peak * width))
        lines.append(
            f"k{p.kernel} f{p.feature:<3} c{p.channels:<4} "
            f"{v:7.1f} |{bar}"
        )
    return "\n".join(lines)


def main(device_name="vu9p"):
    series = ((56, 128), (56, 256), (28, 256), (28, 512), (14, 512))
    points = run_figure6(device_name, series=series, kernels=(1, 3, 5, 7))
    print(format_figure6(device_name, points))
    print(ascii_series(points, "wino_real_gops", label="Winograd Real"))
    print()
    print(ascii_series(points, "spat_real_gops", label="Spatial Real"))
    wino_wins = sum(
        1 for p in points if p.wino_real_gops > p.spat_real_gops
    )
    print(f"\nWinograd wins {wino_wins}/{len(points)} layers; note the "
          "1x1 column where the tile overhead flips the winner, and the "
          "dips where Winograd hits the memory bound.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "vu9p")

#!/usr/bin/env python
"""The paper's cloud case study: VGG16 on a Xilinx VU9P (Section 6.1).

Reproduces the full Step 1-4 flow:
* DSE selects six PI=4/PO=4/PT=6 instances (two per die);
* resource utilisation matches Table 3;
* the compiled design simulates at ~3.3 TOPS aggregate (Table 4);
* the HLS project files are emitted for vendor synthesis.

Run:  python examples/vgg16_cloud.py [output_dir]
"""

import sys
import tempfile

import numpy as np

from repro import (
    CompilerOptions,
    HostRuntime,
    compile_network,
    estimate_resources,
    generate_parameters,
    get_device,
    run_dse,
)
from repro.dse.space import DseOptions
from repro.hls import HlsConfig, emit_project
from repro.ir import zoo


def main(out_dir=None):
    device = get_device("vu9p")
    net = zoo.vgg16()
    print(f"model: {net.name}, {net.total_macs / 1e9:.2f} GMACs, "
          f"{len(net.conv_layers())} conv + {len(net.dense_layers())} fc")

    # Step 2: design space exploration.
    result = run_dse(device, net, DseOptions(frequency_mhz=167))
    print("\nDSE selection (paper: PI=4 PO=4 PT=6, 6 instances):")
    print(result.summary())

    resources = estimate_resources(result.cfg, device)
    util = resources.utilisation(device.resources)
    print(f"\nresources (Table 3): {resources}")
    print("utilisation: " + ", ".join(
        f"{k} {v * 100:.1f}%" for k, v in util.items()
    ))

    # Step 3: compile and emit the HLS project.
    params = generate_parameters(net)
    compiled = compile_network(
        net, result.cfg, result.mapping, params,
        CompilerOptions(quantize=True, pack_data=False),
    )
    print(f"\ncompiled {compiled.total_instructions} instructions, "
          f"{len(compiled.steps)} execution steps")

    out_dir = out_dir or tempfile.mkdtemp(prefix="hybriddnn_vu9p_")
    files = emit_project(
        HlsConfig.from_config(result.cfg, device, "vgg16_vu9p"), out_dir
    )
    print("emitted HLS project:")
    for name, path in files.items():
        print(f"  {name}: {path}")

    # Step 4: run the cycle-approximate simulation.
    runtime = HostRuntime(compiled, device, functional=False)
    sim = runtime.infer(np.zeros(net.input_shape.as_tuple())).sim
    ops = sum(i.ops for i in net.compute_layers())
    gops = ops / sim.seconds / 1e9 * result.cfg.instances
    print(f"\nsimulated: {sim.seconds * 1e3:.1f} ms/image/instance, "
          f"{gops:.1f} GOPS aggregate (paper: 3375.7 GOPS)")
    print("module utilisation: " + ", ".join(
        f"{name} {stats.utilisation(sim.cycles) * 100:.0f}%"
        for name, stats in sim.modules.items()
    ))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
